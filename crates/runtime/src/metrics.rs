//! Cost accounting: the round and message complexities that the paper's
//! theorems bound.
//!
//! Every execution path in the workspace — the real synchronous runtime, the
//! Sampler cost emulation of Section 5, and every baseline — reports its cost
//! through the same [`CostReport`] type so experiments compare like with
//! like.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Summary of the cost of one distributed execution (or one phase of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostReport {
    /// Number of synchronous communication rounds used.
    pub rounds: u64,
    /// Total number of messages sent (each message over one edge in one
    /// direction counts once, as in the paper's message-complexity measure).
    pub messages: u64,
}

impl CostReport {
    /// A zero-cost report.
    pub const fn zero() -> Self {
        CostReport {
            rounds: 0,
            messages: 0,
        }
    }

    /// Creates a report from explicit counts.
    pub const fn new(rounds: u64, messages: u64) -> Self {
        CostReport { rounds, messages }
    }

    /// Sequential composition: rounds add, messages add.
    pub fn then(self, later: CostReport) -> CostReport {
        CostReport {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
        }
    }

    /// Parallel composition: rounds take the maximum, messages add.
    pub fn alongside(self, other: CostReport) -> CostReport {
        CostReport {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
        }
    }

    /// Messages per round (0 if no rounds were used).
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

impl Add for CostReport {
    type Output = CostReport;
    fn add(self, rhs: CostReport) -> CostReport {
        self.then(rhs)
    }
}

impl AddAssign for CostReport {
    fn add_assign(&mut self, rhs: CostReport) {
        *self = self.then(rhs);
    }
}

/// Detailed per-round and per-node accounting produced by the synchronous
/// runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Messages sent in each executed round (`messages_per_round[r]` is the
    /// count of round `r`, starting at round 1; index 0 holds messages sent
    /// during initialization).
    pub messages_per_round: Vec<u64>,
    /// Messages sent by each node over the whole execution.
    pub messages_per_node: Vec<u64>,
}

impl ExecutionMetrics {
    /// Creates empty metrics for a network of `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        ExecutionMetrics {
            messages_per_round: vec![0],
            messages_per_node: vec![0; node_count],
        }
    }

    /// Records that `node` sent one message during the current round slot.
    pub fn record_send(&mut self, node_index: usize) {
        *self
            .messages_per_round
            .last_mut()
            .expect("at least one round slot exists") += 1;
        self.messages_per_node[node_index] += 1;
    }

    /// Opens a new round slot.
    pub fn start_round(&mut self) {
        self.messages_per_round.push(0);
    }

    /// Number of rounds executed so far (the initialization slot does not
    /// count as a round).
    pub fn rounds(&self) -> u64 {
        (self.messages_per_round.len() - 1) as u64
    }

    /// Total messages sent so far.
    pub fn total_messages(&self) -> u64 {
        self.messages_per_round.iter().sum()
    }

    /// The busiest node's message count.
    pub fn max_node_messages(&self) -> u64 {
        self.messages_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Collapses the detailed metrics into a [`CostReport`].
    pub fn summary(&self) -> CostReport {
        CostReport {
            rounds: self.rounds(),
            messages: self.total_messages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_report_compositions() {
        let a = CostReport::new(3, 10);
        let b = CostReport::new(5, 7);
        assert_eq!(a.then(b), CostReport::new(8, 17));
        assert_eq!(a.alongside(b), CostReport::new(5, 17));
        assert_eq!(a + b, CostReport::new(8, 17));
        let mut c = CostReport::zero();
        c += a;
        c += b;
        assert_eq!(c, CostReport::new(8, 17));
    }

    #[test]
    fn messages_per_round_handles_zero_rounds() {
        assert_eq!(CostReport::zero().messages_per_round(), 0.0);
        assert_eq!(CostReport::new(4, 8).messages_per_round(), 2.0);
    }

    #[test]
    fn execution_metrics_accumulate() {
        let mut metrics = ExecutionMetrics::new(3);
        // Initialization sends 2 messages from node 0.
        metrics.record_send(0);
        metrics.record_send(0);
        metrics.start_round();
        metrics.record_send(1);
        metrics.start_round();
        metrics.record_send(2);
        metrics.record_send(1);

        assert_eq!(metrics.rounds(), 2);
        assert_eq!(metrics.total_messages(), 5);
        assert_eq!(metrics.messages_per_round, vec![2, 1, 2]);
        assert_eq!(metrics.messages_per_node, vec![2, 2, 1]);
        assert_eq!(metrics.max_node_messages(), 2);
        assert_eq!(metrics.summary(), CostReport::new(2, 5));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let metrics = ExecutionMetrics::new(0);
        assert_eq!(metrics.rounds(), 0);
        assert_eq!(metrics.total_messages(), 0);
        assert_eq!(metrics.max_node_messages(), 0);
        assert_eq!(metrics.summary(), CostReport::zero());
    }
}
