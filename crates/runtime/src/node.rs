//! Node programs and their per-round execution context.

use crate::error::RuntimeError;
use crate::knowledge::{InitialKnowledge, Port};
use freelunch_graph::{CsrGraph, EdgeId, IncidentEdge, NodeId};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A message in transit: the payload together with the edge it travelled
/// over and the sender.
///
/// Under the paper's model a receiver always learns the edge (it knows the
/// unique ID of each incident edge); whether it can interpret `from` depends
/// on the knowledge model and is up to the algorithm, so programs that want
/// to stay within the unique-edge-ID model should key their state by
/// [`Envelope::edge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The edge the message was sent over.
    pub edge: EdgeId,
    /// The node that sent the message.
    pub from: NodeId,
    /// The message payload.
    pub payload: M,
}

/// One buffered outgoing message, fully resolved at send time: the context
/// validates the edge and looks up the receiver when the program calls
/// [`Context::send`] / [`Context::send_port`], so the dispatch barrier does
/// no per-message graph work at all. `bytes` is the
/// [`NodeProgram::payload_bytes`] wire size, filled in by the engine on the
/// shard worker thread right after the program's step returns.
///
/// This is the unit of work a [`Transport`](crate::transport::Transport)
/// backend receives at the round barrier: the engine hands each backend the
/// per-node outboxes of resolved `Outgoing` messages, and the backend is
/// responsible for moving every payload into the receiver's mailbox (see
/// `docs/TRANSPORT.md` for the delivery contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// The edge the message travels over.
    pub edge: EdgeId,
    /// The sending node.
    pub sender: NodeId,
    /// The receiving node (resolved at send time).
    pub receiver: NodeId,
    /// Wire size of the payload per [`NodeProgram::payload_bytes`]. For a
    /// wire transport this must equal the encoded length byte for byte —
    /// the codec/`payload_bytes` equivalence rule of `docs/TRANSPORT.md`.
    pub bytes: u64,
    /// The message payload.
    pub payload: M,
}

/// The interface the runtime hands to a node in each round.
///
/// The context exposes exactly the information the LOCAL model grants the
/// node: its own ID, its initial knowledge (ports / edge IDs / neighbor IDs
/// depending on the [`KnowledgeModel`](crate::knowledge::KnowledgeModel)),
/// the current round number, a deterministic private source of randomness,
/// and the ability to send messages over incident edges.
///
/// Sends are resolved eagerly: `send_port` (and `broadcast`) read the
/// receiver straight off the node's packed CSR incidence slice, and `send`
/// validates the edge with a single dense array read. A message over an
/// unknown or non-incident edge is dropped and the error is reported when
/// the round's barrier is reached, so a program bug cannot silently
/// teleport messages.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) knowledge: &'a InitialKnowledge,
    /// The node's packed incidence slice (one entry per local port, with the
    /// edge and the opposite endpoint). This is how `KT0` programs send
    /// without ever learning global edge IDs: they address ports, the
    /// runtime translates.
    pub(crate) ports: &'a [IncidentEdge],
    /// Dense raw-edge-ID → endpoints table shared by every node: the one
    /// array read that validates a [`Context::send`].
    pub(crate) edge_endpoints: &'a [[u32; 2]],
    pub(crate) round: u32,
    pub(crate) rng: &'a mut ChaCha8Rng,
    /// The node's persistent outbox, reused across rounds (the engine clears
    /// it before each step; in steady state no send allocates).
    pub(crate) outbox: &'a mut Vec<Outgoing<M>>,
    /// Per-port consecutive-silent-round counters, maintained by the engine
    /// only under an installed fault plan (empty otherwise) — see
    /// [`Context::port_silence`].
    pub(crate) silence: &'a [u32],
    pub(crate) halted: bool,
    /// First invalid send of this step, surfaced at the round barrier.
    pub(crate) error: Option<RuntimeError>,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(
        knowledge: &'a InitialKnowledge,
        ports: &'a [IncidentEdge],
        edge_endpoints: &'a [[u32; 2]],
        round: u32,
        rng: &'a mut ChaCha8Rng,
        outbox: &'a mut Vec<Outgoing<M>>,
        silence: &'a [u32],
    ) -> Self {
        Context {
            knowledge,
            ports,
            edge_endpoints,
            round,
            rng,
            outbox,
            silence,
            halted: false,
            error: None,
        }
    }

    /// The executing node's own ID.
    pub fn node(&self) -> NodeId {
        self.knowledge.node
    }

    /// The node's degree (number of incident edges, with multiplicity).
    pub fn degree(&self) -> usize {
        self.knowledge.degree()
    }

    /// The node's initial knowledge (ports, edge IDs, neighbor IDs — as
    /// permitted by the knowledge model).
    pub fn knowledge(&self) -> &InitialKnowledge {
        self.knowledge
    }

    /// The node's ports (one per incident edge).
    pub fn ports(&self) -> &[Port] {
        &self.knowledge.ports
    }

    /// The current round number (0 during initialization, then 1, 2, …).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The promised upper bound on `log2 n` (model assumption (i)).
    pub fn log_n_upper_bound(&self) -> u32 {
        self.knowledge.log_n_upper_bound
    }

    /// The node's private, deterministic random stream.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Queues a message to be delivered over `edge` at the beginning of the
    /// next round.
    ///
    /// The context validates immediately — one read of the dense endpoints
    /// table — that `edge` exists and is incident to this node. An invalid
    /// send queues nothing and aborts the execution at the round barrier, so
    /// a program bug cannot silently teleport messages.
    pub fn send(&mut self, edge: EdgeId, payload: M) {
        let me = self.knowledge.node.raw();
        let [u, v] = self
            .edge_endpoints
            .get(edge.index())
            .copied()
            .unwrap_or([CsrGraph::NO_ENDPOINT; 2]);
        let receiver = if u == me {
            v
        } else if v == me {
            u
        } else {
            let error = if u == CsrGraph::NO_ENDPOINT {
                RuntimeError::UnknownEdge { edge }
            } else {
                RuntimeError::NotIncident {
                    node: self.knowledge.node,
                    edge,
                }
            };
            self.error.get_or_insert(error);
            return;
        };
        self.queue_resolved(edge, NodeId::new(receiver), payload);
    }

    /// Queues a fully resolved message; the single construction site every
    /// send path funnels through (`bytes` is sized later, by the engine, on
    /// the worker that stepped this node).
    #[inline]
    fn queue_resolved(&mut self, edge: EdgeId, receiver: NodeId, payload: M) {
        self.outbox.push(Outgoing {
            edge,
            sender: self.knowledge.node,
            receiver,
            bytes: 0,
            payload,
        });
    }

    /// Queues a message on the edge behind local port `port`.
    ///
    /// This works under every knowledge model (the runtime resolves the port
    /// to an edge; the program never needs to see the global ID) and needs
    /// no validation at all — the port table *is* the node's incidence list.
    /// Returns `false` and sends nothing if the port does not exist.
    pub fn send_port(&mut self, port: usize, payload: M) -> bool {
        match self.ports.get(port) {
            Some(&IncidentEdge { edge, neighbor }) => {
                self.queue_resolved(edge, neighbor, payload);
                true
            }
            None => false,
        }
    }

    /// Per-port silence counters under fault injection: entry `p` is the
    /// number of consecutive rounds (including the current one) in which no
    /// message arrived over port `p`. This is how a program *observes* a
    /// silent neighbor — a crashed neighbor, or one whose link was cut,
    /// shows up as a monotonically growing counter, and the program can
    /// react (re-route, give up on the neighbor, …) without any information
    /// the LOCAL model would not grant it.
    ///
    /// The engine maintains the counters only when the network was built
    /// with a non-empty [`FaultPlan`](crate::fault::FaultPlan)
    /// ([`Network::with_fault_plan`](crate::engine::Network::with_fault_plan));
    /// on the failure-free fast path this returns an empty slice, so
    /// programs should treat "empty" as "no fault instrumentation" rather
    /// than "no silence".
    pub fn port_silence(&self) -> &[u32] {
        self.silence
    }

    /// Marks this node as halted. A halted node still receives messages but
    /// the runtime's `run_until_halt` stops once every node has halted.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Number of messages queued so far in this round.
    pub fn queued_messages(&self) -> usize {
        self.outbox.len()
    }
}

impl<'a, M: Clone> Context<'a, M> {
    /// Queues a copy of `payload` on every incident edge ("local broadcast").
    /// Works under every knowledge model. Returns the number of messages
    /// queued.
    pub fn broadcast(&mut self, payload: M) -> usize {
        let degree = self.ports.len();
        self.outbox.reserve(degree);
        for &IncidentEdge { edge, neighbor } in self.ports {
            self.queue_resolved(edge, neighbor, payload.clone());
        }
        degree
    }
}

/// A LOCAL algorithm, expressed as the program run by every node.
///
/// Implementations are created per node by the factory passed to
/// [`Network::new`](crate::engine::Network::new); the runtime then calls
/// [`NodeProgram::init`] once and [`NodeProgram::round`] once per
/// synchronous round, delivering the messages sent in the previous round.
///
/// Programs must be [`Send`] and their messages [`Send`] + [`Sync`]: when
/// the network is configured with more than one shard
/// ([`NetworkConfig::sharded`](crate::engine::NetworkConfig::sharded)), each
/// round steps the programs of different shards on different worker
/// threads, and the dispatch barrier's receiver-sharded workers read every
/// node's outbox (and inbox snapshot) through shared references. Programs
/// hold only per-node state and messages are plain data, so this is
/// automatic for ordinary implementations.
pub trait NodeProgram: Send {
    /// The message type exchanged by this algorithm.
    type Message: Clone + fmt::Debug + Send + Sync;

    /// Called once before the first round; messages sent here are delivered
    /// in round 1.
    fn init(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called once per round with the messages delivered this round.
    fn round(&mut self, ctx: &mut Context<'_, Self::Message>, inbox: &[Envelope<Self::Message>]);

    /// CONGEST-style wire size of one message payload in bytes, used by the
    /// engine's bandwidth accounting
    /// ([`MessageLedger`](crate::metrics::MessageLedger)).
    ///
    /// The default charges the in-memory size of the message type
    /// (`size_of::<Self::Message>()`), which is exact for fixed-size
    /// payloads. Programs whose messages carry heap data (token bundles,
    /// strings, …) should override this to charge the true serialized size —
    /// the sizing rules are specified in `docs/METRICS.md`. Sizing runs on
    /// the shard worker threads during the execute phase, so an override
    /// must depend only on `message`.
    fn payload_bytes(message: &Self::Message) -> u64 {
        let _ = message;
        std::mem::size_of::<Self::Message>() as u64
    }

    /// Serializes this node's mutable program state into `buf` for a
    /// [`NetworkCheckpoint`](crate::checkpoint::NetworkCheckpoint), using
    /// the `docs/TRANSPORT.md` wire conventions (little-endian fields, no
    /// implicit lengths).
    ///
    /// The default writes nothing, which is correct only for stateless
    /// programs; any program whose `round` reads fields mutated in earlier
    /// rounds must override both hooks, and
    /// [`Network::checkpoint`](crate::engine::Network::checkpoint) of a
    /// restored run is only bit-identical if
    /// `load_state(save_state(p)) == p`. See `docs/RECOVERY.md`.
    fn save_state(&self, buf: &mut Vec<u8>) {
        let _ = buf;
    }

    /// Restores the state written by [`NodeProgram::save_state`] into a
    /// freshly constructed program (the factory runs first, then this).
    ///
    /// The default accepts only an empty blob — matching the default
    /// `save_state` — and rejects anything else, so forgetting to override
    /// one of the pair is a loud [`CodecError`](crate::transport::CodecError)
    /// at restore time, never a silently wrong resume.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), crate::transport::CodecError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(crate::transport::CodecError::Oversized {
                expected: 0,
                got: bytes.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{initial_knowledge, KnowledgeModel};
    use freelunch_graph::MultiGraph;
    use rand::SeedableRng;

    fn sample_graph() -> MultiGraph {
        let mut g = MultiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        g
    }

    fn sample_knowledge(model: KnowledgeModel) -> Vec<InitialKnowledge> {
        initial_knowledge(&sample_graph(), model, 1)
    }

    fn ports_of(node: u32) -> Vec<IncidentEdge> {
        sample_graph().incident_edges(NodeId::new(node)).to_vec()
    }

    fn endpoints_table() -> Vec<[u32; 2]> {
        // The real construction the engine feeds Context with.
        sample_graph().freeze().endpoint_table()
    }

    #[test]
    fn context_exposes_local_view() {
        let knowledge = sample_knowledge(KnowledgeModel::UniqueEdgeIds);
        let ports = ports_of(0);
        let endpoints = endpoints_table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut outbox = Vec::new();
        let ctx: Context<'_, u32> = Context::new(
            &knowledge[0],
            &ports,
            &endpoints,
            3,
            &mut rng,
            &mut outbox,
            &[],
        );
        assert_eq!(ctx.node(), NodeId::new(0));
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.ports().len(), 2);
        assert!(ctx.log_n_upper_bound() >= 2);
        assert_eq!(ctx.queued_messages(), 0);
        // No fault plan installed: silence instrumentation is off.
        assert!(ctx.port_silence().is_empty());
    }

    #[test]
    fn port_silence_is_exposed_when_instrumented() {
        let knowledge = sample_knowledge(KnowledgeModel::UniqueEdgeIds);
        let ports = ports_of(0);
        let endpoints = endpoints_table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut outbox: Vec<Outgoing<u8>> = Vec::new();
        let silence = [0u32, 4];
        let ctx = Context::new(
            &knowledge[0],
            &ports,
            &endpoints,
            1,
            &mut rng,
            &mut outbox,
            &silence,
        );
        // Port 1's neighbor has been silent for 4 rounds.
        assert_eq!(ctx.port_silence(), &[0, 4]);
    }

    #[test]
    fn send_and_broadcast_queue_resolved_messages() {
        let knowledge = sample_knowledge(KnowledgeModel::UniqueEdgeIds);
        let ports = ports_of(0);
        let endpoints = endpoints_table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut outbox = Vec::new();
        let mut ctx: Context<'_, &'static str> = Context::new(
            &knowledge[0],
            &ports,
            &endpoints,
            1,
            &mut rng,
            &mut outbox,
            &[],
        );
        ctx.send(EdgeId::new(0), "hello");
        assert_eq!(ctx.queued_messages(), 1);
        let sent = ctx.broadcast("all");
        assert_eq!(sent, 2);
        assert_eq!(ctx.queued_messages(), 3);
        assert!(ctx.error.is_none());
        // Every queued message already knows its receiver.
        assert_eq!(outbox[0].receiver, NodeId::new(1));
        assert_eq!(outbox[1].receiver, NodeId::new(1));
        assert_eq!(outbox[2].receiver, NodeId::new(2));
    }

    #[test]
    fn invalid_sends_are_rejected_at_send_time() {
        let knowledge = sample_knowledge(KnowledgeModel::UniqueEdgeIds);
        // Node 1 is incident to edge 0 only.
        let ports = ports_of(1);
        let endpoints = endpoints_table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut outbox: Vec<Outgoing<u8>> = Vec::new();
        let mut ctx = Context::new(
            &knowledge[1],
            &ports,
            &endpoints,
            1,
            &mut rng,
            &mut outbox,
            &[],
        );
        // Edge 1 connects 0 and 2: not incident to node 1.
        ctx.send(EdgeId::new(1), 9);
        assert_eq!(
            ctx.error,
            Some(RuntimeError::NotIncident {
                node: NodeId::new(1),
                edge: EdgeId::new(1)
            })
        );
        // A later unknown-edge send does not overwrite the first error, and
        // neither send queues a message.
        ctx.send(EdgeId::new(99), 9);
        assert!(matches!(ctx.error, Some(RuntimeError::NotIncident { .. })));
        assert_eq!(ctx.queued_messages(), 0);
    }

    #[test]
    fn unknown_edge_is_distinguished_from_non_incident() {
        let knowledge = sample_knowledge(KnowledgeModel::UniqueEdgeIds);
        let ports = ports_of(0);
        let endpoints = endpoints_table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut outbox: Vec<Outgoing<u8>> = Vec::new();
        let mut ctx = Context::new(
            &knowledge[0],
            &ports,
            &endpoints,
            1,
            &mut rng,
            &mut outbox,
            &[],
        );
        ctx.send(EdgeId::new(999), 1);
        assert_eq!(
            ctx.error,
            Some(RuntimeError::UnknownEdge {
                edge: EdgeId::new(999)
            })
        );
    }

    #[test]
    fn send_port_works_under_every_model() {
        for model in [
            KnowledgeModel::Kt0,
            KnowledgeModel::UniqueEdgeIds,
            KnowledgeModel::Kt1,
        ] {
            let knowledge = sample_knowledge(model);
            let ports = ports_of(0);
            let endpoints = endpoints_table();
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut outbox = Vec::new();
            let mut ctx: Context<'_, u8> = Context::new(
                &knowledge[0],
                &ports,
                &endpoints,
                1,
                &mut rng,
                &mut outbox,
                &[],
            );
            assert!(ctx.send_port(1, 5));
            assert!(!ctx.send_port(99, 5));
            assert_eq!(ctx.queued_messages(), 1);
        }
    }

    #[test]
    fn halt_flag_is_recorded() {
        let knowledge = sample_knowledge(KnowledgeModel::Kt1);
        let ports = ports_of(1);
        let endpoints = endpoints_table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut outbox: Vec<Outgoing<()>> = Vec::new();
        let mut ctx = Context::new(
            &knowledge[1],
            &ports,
            &endpoints,
            1,
            &mut rng,
            &mut outbox,
            &[],
        );
        assert!(!ctx.halted);
        ctx.halt();
        assert!(ctx.halted);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        use rand::Rng;
        let knowledge = sample_knowledge(KnowledgeModel::Kt1);
        let ports = ports_of(0);
        let endpoints = endpoints_table();
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        let mut outbox_a: Vec<Outgoing<()>> = Vec::new();
        let mut outbox_b: Vec<Outgoing<()>> = Vec::new();
        let mut ctx_a = Context::new(
            &knowledge[0],
            &ports,
            &endpoints,
            1,
            &mut rng_a,
            &mut outbox_a,
            &[],
        );
        let a: u64 = ctx_a.rng().gen();
        let mut ctx_b = Context::new(
            &knowledge[0],
            &ports,
            &endpoints,
            1,
            &mut rng_b,
            &mut outbox_b,
            &[],
        );
        let b: u64 = ctx_b.rng().gen();
        assert_eq!(a, b);
    }
}
