//! Node programs and their per-round execution context.

use crate::knowledge::{InitialKnowledge, Port};
use freelunch_graph::{EdgeId, NodeId};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A message in transit: the payload together with the edge it travelled
/// over and the sender.
///
/// Under the paper's model a receiver always learns the edge (it knows the
/// unique ID of each incident edge); whether it can interpret `from` depends
/// on the knowledge model and is up to the algorithm, so programs that want
/// to stay within the unique-edge-ID model should key their state by
/// [`Envelope::edge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The edge the message was sent over.
    pub edge: EdgeId,
    /// The node that sent the message.
    pub from: NodeId,
    /// The message payload.
    pub payload: M,
}

/// One buffered outgoing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Outgoing<M> {
    pub edge: EdgeId,
    pub payload: M,
}

/// The interface the runtime hands to a node in each round.
///
/// The context exposes exactly the information the LOCAL model grants the
/// node: its own ID, its initial knowledge (ports / edge IDs / neighbor IDs
/// depending on the [`KnowledgeModel`](crate::knowledge::KnowledgeModel)),
/// the current round number, a deterministic private source of randomness,
/// and the ability to send messages over incident edges.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) knowledge: &'a InitialKnowledge,
    /// The edge behind each local port, resolved by the runtime. This is how
    /// `KT0` programs send without ever learning global edge IDs: they
    /// address ports, the runtime translates.
    pub(crate) port_edges: &'a [EdgeId],
    pub(crate) round: u32,
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) outbox: Vec<Outgoing<M>>,
    pub(crate) halted: bool,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(
        knowledge: &'a InitialKnowledge,
        port_edges: &'a [EdgeId],
        round: u32,
        rng: &'a mut ChaCha8Rng,
    ) -> Self {
        Context {
            knowledge,
            port_edges,
            round,
            rng,
            outbox: Vec::new(),
            halted: false,
        }
    }

    /// The executing node's own ID.
    pub fn node(&self) -> NodeId {
        self.knowledge.node
    }

    /// The node's degree (number of incident edges, with multiplicity).
    pub fn degree(&self) -> usize {
        self.knowledge.degree()
    }

    /// The node's initial knowledge (ports, edge IDs, neighbor IDs — as
    /// permitted by the knowledge model).
    pub fn knowledge(&self) -> &InitialKnowledge {
        self.knowledge
    }

    /// The node's ports (one per incident edge).
    pub fn ports(&self) -> &[Port] {
        &self.knowledge.ports
    }

    /// The current round number (0 during initialization, then 1, 2, …).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The promised upper bound on `log2 n` (model assumption (i)).
    pub fn log_n_upper_bound(&self) -> u32 {
        self.knowledge.log_n_upper_bound
    }

    /// The node's private, deterministic random stream.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Queues a message to be delivered over `edge` at the beginning of the
    /// next round.
    ///
    /// The runtime validates at the end of the round that `edge` is incident
    /// to this node and aborts the execution otherwise, so a program bug
    /// cannot silently teleport messages.
    pub fn send(&mut self, edge: EdgeId, payload: M) {
        self.outbox.push(Outgoing { edge, payload });
    }

    /// Queues a message on the edge behind local port `port`.
    ///
    /// This works under every knowledge model (the runtime resolves the port
    /// to an edge; the program never needs to see the global ID). Returns
    /// `false` and sends nothing if the port does not exist.
    pub fn send_port(&mut self, port: usize, payload: M) -> bool {
        match self.port_edges.get(port) {
            Some(&edge) => {
                self.send(edge, payload);
                true
            }
            None => false,
        }
    }

    /// Marks this node as halted. A halted node still receives messages but
    /// the runtime's `run_until_halt` stops once every node has halted.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Number of messages queued so far in this round.
    pub fn queued_messages(&self) -> usize {
        self.outbox.len()
    }
}

impl<'a, M: Clone> Context<'a, M> {
    /// Queues a copy of `payload` on every incident edge ("local broadcast").
    /// Works under every knowledge model. Returns the number of messages
    /// queued.
    pub fn broadcast(&mut self, payload: M) -> usize {
        let degree = self.port_edges.len();
        for port in 0..degree {
            self.send_port(port, payload.clone());
        }
        degree
    }
}

/// A LOCAL algorithm, expressed as the program run by every node.
///
/// Implementations are created per node by the factory passed to
/// [`Network::new`](crate::engine::Network::new); the runtime then calls
/// [`NodeProgram::init`] once and [`NodeProgram::round`] once per
/// synchronous round, delivering the messages sent in the previous round.
///
/// Programs (and their messages) must be [`Send`]: when the network is
/// configured with more than one shard
/// ([`NetworkConfig::sharded`](crate::engine::NetworkConfig::sharded)), each
/// round steps the programs of different shards on different worker
/// threads. Programs hold only per-node state, so this is automatic for
/// ordinary implementations.
pub trait NodeProgram: Send {
    /// The message type exchanged by this algorithm.
    type Message: Clone + fmt::Debug + Send;

    /// Called once before the first round; messages sent here are delivered
    /// in round 1.
    fn init(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called once per round with the messages delivered this round.
    fn round(&mut self, ctx: &mut Context<'_, Self::Message>, inbox: &[Envelope<Self::Message>]);

    /// CONGEST-style wire size of one message payload in bytes, used by the
    /// engine's bandwidth accounting
    /// ([`MessageLedger`](crate::metrics::MessageLedger)).
    ///
    /// The default charges the in-memory size of the message type
    /// (`size_of::<Self::Message>()`), which is exact for fixed-size
    /// payloads. Programs whose messages carry heap data (token bundles,
    /// strings, …) should override this to charge the true serialized size —
    /// the sizing rules are specified in `docs/METRICS.md`. Sizing runs on
    /// the shard worker threads during the execute phase, so an override
    /// must depend only on `message`.
    fn payload_bytes(message: &Self::Message) -> u64 {
        let _ = message;
        std::mem::size_of::<Self::Message>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{initial_knowledge, KnowledgeModel};
    use freelunch_graph::MultiGraph;
    use rand::SeedableRng;

    fn sample_graph() -> MultiGraph {
        let mut g = MultiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        g
    }

    fn sample_knowledge(model: KnowledgeModel) -> Vec<InitialKnowledge> {
        initial_knowledge(&sample_graph(), model, 1)
    }

    fn port_edges_of(node: u32) -> Vec<EdgeId> {
        sample_graph()
            .incident_edges(NodeId::new(node))
            .iter()
            .map(|ie| ie.edge)
            .collect()
    }

    #[test]
    fn context_exposes_local_view() {
        let knowledge = sample_knowledge(KnowledgeModel::UniqueEdgeIds);
        let ports = port_edges_of(0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ctx: Context<'_, u32> = Context::new(&knowledge[0], &ports, 3, &mut rng);
        assert_eq!(ctx.node(), NodeId::new(0));
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.ports().len(), 2);
        assert!(ctx.log_n_upper_bound() >= 2);
        assert_eq!(ctx.queued_messages(), 0);
    }

    #[test]
    fn send_and_broadcast_queue_messages() {
        let knowledge = sample_knowledge(KnowledgeModel::UniqueEdgeIds);
        let ports = port_edges_of(0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ctx: Context<'_, &'static str> = Context::new(&knowledge[0], &ports, 1, &mut rng);
        ctx.send(EdgeId::new(0), "hello");
        assert_eq!(ctx.queued_messages(), 1);
        let sent = ctx.broadcast("all");
        assert_eq!(sent, 2);
        assert_eq!(ctx.queued_messages(), 3);
    }

    #[test]
    fn send_port_works_under_every_model() {
        for model in [
            KnowledgeModel::Kt0,
            KnowledgeModel::UniqueEdgeIds,
            KnowledgeModel::Kt1,
        ] {
            let knowledge = sample_knowledge(model);
            let ports = port_edges_of(0);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut ctx: Context<'_, u8> = Context::new(&knowledge[0], &ports, 1, &mut rng);
            assert!(ctx.send_port(1, 5));
            assert!(!ctx.send_port(99, 5));
            assert_eq!(ctx.queued_messages(), 1);
        }
    }

    #[test]
    fn halt_flag_is_recorded() {
        let knowledge = sample_knowledge(KnowledgeModel::Kt1);
        let ports = port_edges_of(1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ctx: Context<'_, ()> = Context::new(&knowledge[1], &ports, 1, &mut rng);
        assert!(!ctx.halted);
        ctx.halt();
        assert!(ctx.halted);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        use rand::Rng;
        let knowledge = sample_knowledge(KnowledgeModel::Kt1);
        let ports = port_edges_of(0);
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        let mut ctx_a: Context<'_, ()> = Context::new(&knowledge[0], &ports, 1, &mut rng_a);
        let a: u64 = ctx_a.rng().gen();
        let mut ctx_b: Context<'_, ()> = Context::new(&knowledge[0], &ports, 1, &mut rng_b);
        let b: u64 = ctx_b.rng().gen();
        assert_eq!(a, b);
    }
}
