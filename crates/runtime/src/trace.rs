//! Bounded message traces for debugging and for the Figure-1 style
//! step-by-step illustrations.

use freelunch_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// How much per-message trace work the engine performs.
///
/// Tracing is a debugging and illustration tool; it is priced per message,
/// so the engine gates it behind this mode instead of paying for it
/// unconditionally. The default is [`TraceMode::Off`]: the hot dispatch
/// path does no per-message trace work at all (message *counts* remain
/// exact in [`ExecutionMetrics`](crate::metrics::ExecutionMetrics) and the
/// [`MessageLedger`](crate::metrics::MessageLedger) regardless).
///
/// [`TraceMode::Full`] additionally forces the round barrier onto its
/// serial dispatch path, because trace events must be recorded in canonical
/// (sender-major) order: a traced execution trades wall-clock parallelism
/// for the event log. Outputs, metrics and the ledger are bit-identical
/// between the two modes — `tests/determinism_matrix.rs` pins this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// No per-message recording: the trace stays empty (the default).
    #[default]
    Off,
    /// Record every message event, storing up to
    /// [`NetworkConfig::trace_capacity`](crate::engine::NetworkConfig::trace_capacity)
    /// of them (further events are counted, not stored).
    Full,
}

/// One recorded message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Round in which the message was *sent* (0 for initialization).
    pub round: u32,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Edge the message travelled over.
    pub edge: EdgeId,
}

/// A bounded log of message deliveries.
///
/// Once the capacity is reached, further events are counted but not stored,
/// so tracing a large execution can never exhaust memory.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that stores at most `capacity` events (0 disables
    /// storage entirely while still counting).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Rebuilds a trace from its checkpointed parts (see
    /// `docs/RECOVERY.md`): the stored events, the storage capacity, and
    /// the overflow-drop counter.
    pub(crate) fn from_checkpoint_parts(
        events: Vec<TraceEvent>,
        capacity: usize,
        dropped: u64,
    ) -> Self {
        Trace {
            events,
            capacity,
            dropped,
        }
    }

    /// The event-storage capacity the trace was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event, storing it if capacity allows.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The stored events, in delivery order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events that exceeded the capacity and were dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total number of events observed (stored + dropped).
    pub fn total(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Events sent in a specific round.
    pub fn events_in_round(&self, round: u32) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.round == round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u32, from: u32, to: u32, edge: u64) -> TraceEvent {
        TraceEvent {
            round,
            from: NodeId::new(from),
            to: NodeId::new(to),
            edge: EdgeId::new(edge),
        }
    }

    #[test]
    fn records_until_capacity_then_counts() {
        let mut trace = Trace::with_capacity(2);
        trace.record(event(1, 0, 1, 0));
        trace.record(event(1, 1, 0, 0));
        trace.record(event(2, 0, 1, 0));
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.dropped(), 1);
        assert_eq!(trace.total(), 3);
    }

    #[test]
    fn zero_capacity_only_counts() {
        let mut trace = Trace::with_capacity(0);
        trace.record(event(1, 0, 1, 0));
        assert!(trace.events().is_empty());
        assert_eq!(trace.total(), 1);
    }

    #[test]
    fn filter_by_round() {
        let mut trace = Trace::with_capacity(10);
        trace.record(event(1, 0, 1, 0));
        trace.record(event(2, 1, 0, 0));
        trace.record(event(2, 0, 1, 0));
        assert_eq!(trace.events_in_round(2).count(), 2);
        assert_eq!(trace.events_in_round(3).count(), 0);
    }
}
