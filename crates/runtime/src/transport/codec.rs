//! Wire encoding of message payloads for the socket-backed transports.
//!
//! # The codec/`payload_bytes` equivalence rule
//!
//! The [`MessageLedger`](crate::metrics::MessageLedger) sizes every message
//! with [`NodeProgram::payload_bytes`](crate::node::NodeProgram::payload_bytes),
//! whatever the backend. For that number to stay meaningful on a real wire,
//! every [`WireCodec`] implementation must encode to **exactly**
//! `payload_bytes(message)` bytes — the transports check this per message
//! and fail the barrier on a mismatch, and `tests/wire_codec.rs` sweeps
//! every shipped message type against the rule.
//!
//! For fixed-size payloads the default `payload_bytes` charges
//! `size_of::<M>()`, so the provided implementations write their natural
//! little-endian encoding and zero-pad up to `size_of` ([`pad_to_size`]);
//! decoding validates the padding, the exact length, and every tag byte, so
//! a truncated, oversized or corrupted frame is always rejected rather than
//! misread. Variable-size payloads (e.g. `Vec<u32>` token bundles) must
//! override `payload_bytes` to the true serialized size — see
//! `docs/METRICS.md` §3 for the sizing rules.

use std::fmt;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer is shorter than the encoding requires.
    Truncated {
        /// Bytes required (minimum).
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The buffer is longer than the encoding allows (trailing bytes).
    Oversized {
        /// Bytes the encoding consumes.
        expected: usize,
        /// Bytes available.
        got: usize,
    },
    /// A variant tag byte holds an unknown value.
    InvalidTag {
        /// The offending tag.
        tag: u8,
    },
    /// A padding byte that must be zero was not (corruption indicator).
    InvalidPadding,
    /// The byte length is not a multiple of the element size of a
    /// variable-length encoding.
    InvalidLength {
        /// Bytes available.
        got: usize,
        /// Required element granularity.
        multiple_of: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(
                    f,
                    "truncated payload: need at least {needed} bytes, got {got}"
                )
            }
            CodecError::Oversized { expected, got } => {
                write!(f, "oversized payload: expected {expected} bytes, got {got}")
            }
            CodecError::InvalidTag { tag } => write!(f, "unknown variant tag {tag:#04x}"),
            CodecError::InvalidPadding => write!(f, "non-zero padding byte"),
            CodecError::InvalidLength { got, multiple_of } => {
                write!(
                    f,
                    "{got} bytes is not a multiple of the {multiple_of}-byte element size"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Byte-level encoding of a message payload, used by [`TcpTransport`] and
/// [`MockTransport`] frames.
///
/// Laws (checked by the transports and swept in `tests/wire_codec.rs`):
///
/// 1. **Roundtrip** — `decode(encode(m)) == m` for every message `m`.
/// 2. **Sizing** — the encoded length equals
///    [`NodeProgram::payload_bytes`](crate::node::NodeProgram::payload_bytes)
///    of every program shipping this message type, byte for byte.
/// 3. **Rejection** — `decode` errors on any buffer that `encode` cannot
///    produce (truncated, oversized, unknown tag, non-zero padding).
///
/// [`TcpTransport`]: crate::transport::TcpTransport
/// [`MockTransport`]: crate::transport::MockTransport
pub trait WireCodec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one payload from exactly `bytes`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if `bytes` is not exactly one valid
    /// encoding.
    fn decode(bytes: &[u8]) -> Result<Self, CodecError>;

    /// The encoding of `self` as a fresh buffer (convenience for tests).
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Zero-pads `buf` so that the bytes written since `start` total `size`
/// (the fixed-size convention: encodings fill up to `size_of::<M>()`).
pub fn pad_to_size(buf: &mut Vec<u8>, start: usize, size: usize) {
    debug_assert!(buf.len() - start <= size, "encoding exceeds its size class");
    buf.resize(start + size, 0);
}

/// Validates that `bytes` is exactly `size` long and every byte from
/// `used` on is zero (the decode-side counterpart of [`pad_to_size`]).
pub fn check_size_and_padding(bytes: &[u8], used: usize, size: usize) -> Result<(), CodecError> {
    if bytes.len() < size {
        return Err(CodecError::Truncated {
            needed: size,
            got: bytes.len(),
        });
    }
    if bytes.len() > size {
        return Err(CodecError::Oversized {
            expected: size,
            got: bytes.len(),
        });
    }
    if bytes[used..].iter().any(|&b| b != 0) {
        return Err(CodecError::InvalidPadding);
    }
    Ok(())
}

impl WireCodec for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        check_size_and_padding(bytes, 0, 0)
    }
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl WireCodec for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
                const SIZE: usize = std::mem::size_of::<$ty>();
                check_size_and_padding(bytes, SIZE, SIZE)?;
                let mut raw = [0u8; SIZE];
                raw.copy_from_slice(bytes);
                Ok(<$ty>::from_le_bytes(raw))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64);

/// Token bundles: each element as 4 little-endian bytes, no length prefix
/// (the frame's payload length delimits the bundle). Programs shipping
/// `Vec<u32>` must override `payload_bytes` to `4 * len` to satisfy the
/// sizing law — the default `size_of::<Vec<u32>>()` charges the `Vec`
/// header, not the tokens.
impl WireCodec for Vec<u32> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.reserve(4 * self.len());
        for value in self {
            buf.extend_from_slice(&value.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if !bytes.len().is_multiple_of(4) {
            return Err(CodecError::InvalidLength {
                got: bytes.len(),
                multiple_of: 4,
            });
        }
        Ok(bytes
            .chunks_exact(4)
            .map(|chunk| u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_at_their_size() {
        let value: u32 = 0xDEAD_BEEF;
        let encoded = value.encode_to_vec();
        assert_eq!(encoded.len(), 4);
        assert_eq!(u32::decode(&encoded), Ok(value));
        assert_eq!(u64::decode(&7u64.encode_to_vec()), Ok(7));
        assert_eq!(u8::decode(&[9]), Ok(9));
    }

    #[test]
    fn unit_is_zero_bytes() {
        assert!(().encode_to_vec().is_empty());
        assert_eq!(<()>::decode(&[]), Ok(()));
        assert!(matches!(
            <()>::decode(&[0]),
            Err(CodecError::Oversized { .. })
        ));
    }

    #[test]
    fn truncated_and_oversized_are_rejected() {
        let encoded = 5u32.encode_to_vec();
        assert!(matches!(
            u32::decode(&encoded[..3]),
            Err(CodecError::Truncated { needed: 4, got: 3 })
        ));
        let mut long = encoded;
        long.push(0);
        assert!(matches!(
            u32::decode(&long),
            Err(CodecError::Oversized {
                expected: 4,
                got: 5
            })
        ));
    }

    #[test]
    fn token_bundles_roundtrip_and_reject_ragged_lengths() {
        let bundle = vec![1u32, u32::MAX, 42];
        let encoded = bundle.encode_to_vec();
        assert_eq!(encoded.len(), 12);
        assert_eq!(Vec::<u32>::decode(&encoded), Ok(bundle));
        assert_eq!(Vec::<u32>::decode(&[]), Ok(Vec::new()));
        assert!(matches!(
            Vec::<u32>::decode(&encoded[..7]),
            Err(CodecError::InvalidLength {
                got: 7,
                multiple_of: 4
            })
        ));
    }

    #[test]
    fn padding_helpers_enforce_zero_fill() {
        let mut buf = vec![0xAA];
        pad_to_size(&mut buf, 0, 4);
        assert_eq!(buf, [0xAA, 0, 0, 0]);
        assert_eq!(check_size_and_padding(&buf, 1, 4), Ok(()));
        assert_eq!(
            check_size_and_padding(&[0xAA, 0, 1, 0], 1, 4),
            Err(CodecError::InvalidPadding)
        );
    }

    #[test]
    fn errors_display_their_diagnosis() {
        assert!(CodecError::Truncated { needed: 8, got: 2 }
            .to_string()
            .contains("8"));
        assert!(CodecError::InvalidTag { tag: 0xFF }
            .to_string()
            .contains("0xff"));
    }
}
