//! The default backend: the zero-allocation in-process message plane.
//!
//! This is the double-buffered fast path the engine has always used, moved
//! byte-for-byte behind the [`Transport`] trait: payloads move by value
//! from outbox to mailbox (never serialized, never cloned), all exchange
//! buffers are allocated once and reused, and the parallel path is the
//! receiver-sharded bucket exchange described in `docs/PERF.md` §2.

use super::{BarrierOutcome, RoundBarrier, Transport};
use crate::engine::Scheduling;
use crate::error::RuntimeResult;
use crate::node::{Envelope, Outgoing};
use crate::trace::TraceEvent;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on dispatch chunks *per worker* under
/// [`Scheduling::Dynamic`]: the chunk grid is coarsened until at most this
/// many chunks per worker remain, so the chunk×chunk bucket matrix stays
/// `O((16 · shards)²)` `Vec` headers however large the graph — while a
/// 16-way-finer grid than the static partition already caps any single
/// hub chunk at ~1/16th of a worker's round.
const DISPATCH_CHUNKS_PER_WORKER: usize = 16;

/// One claimable unit of the dynamic route pass: a sender chunk's outboxes
/// paired with its row of the chunk×chunk bucket matrix. Slots are `take`n
/// exactly once off the claim cursor.
type RouteQueue<'a, M> =
    Vec<Mutex<Option<(&'a mut [Vec<Outgoing<M>>], &'a mut [Vec<Outgoing<M>>])>>>;

/// One claimable unit of the dynamic delivery pass: `(first receiver index,
/// receiver-chunk mailboxes, that chunk's bucket column)`.
type DeliveryQueue<'a, M> = Vec<
    Mutex<
        Option<(
            usize,
            &'a mut [Vec<Envelope<M>>],
            &'a mut [Vec<Outgoing<M>>],
        )>,
    >,
>;

/// Reusable scratch of the parallel dispatch barrier: per-edge message and
/// byte accumulators shared by the receiver-sharded workers (each message
/// is counted by exactly one worker; an edge can be touched by at most the
/// two workers owning its endpoints, hence the atomics) plus one touched
/// list per worker. A worker appends an edge to its touched list exactly
/// when its `fetch_add` is the first of the round for that edge, so the
/// lists partition the touched edge set and the barrier can merge and reset
/// in `O(edges touched)`, never `O(m)`.
///
/// Allocated once, on the first parallel dispatch; cleared — not freed — at
/// every merge.
#[derive(Debug)]
struct DispatchScratch {
    edge_counts: Vec<AtomicU32>,
    edge_bytes: Vec<AtomicU64>,
    touched: Vec<Vec<u32>>,
}

impl DispatchScratch {
    fn new(edge_slots: usize, shards: usize) -> Self {
        DispatchScratch {
            edge_counts: (0..edge_slots).map(|_| AtomicU32::new(0)).collect(),
            edge_bytes: (0..edge_slots).map(|_| AtomicU64::new(0)).collect(),
            touched: (0..shards).map(|_| Vec::new()).collect(),
        }
    }
}

/// The in-process delivery backend (the default `Network` transport).
///
/// Serial delivery when single-sharded, traced, or silent; the
/// receiver-sharded parallel bucket exchange otherwise. Every buffer is
/// reused across rounds, so steady-state rounds allocate nothing.
pub struct InProcessTransport<M> {
    /// Bucket exchange of the parallel barrier, row-major:
    /// `buckets[s * cols + r]` holds the messages nodes of sender chunk `s`
    /// sent to receivers of chunk `r`, in canonical (node, send) order. The
    /// grid is one chunk per shard under [`Scheduling::Static`] and the
    /// finer work-stealing chunk grid under [`Scheduling::Dynamic`]. Empty
    /// until the first parallel dispatch; reused afterwards.
    buckets: Vec<Vec<Outgoing<M>>>,
    /// Transposed view of `buckets` during delivery (column-major), so each
    /// receiver shard's worker can take a contiguous `&mut` slice of its
    /// column. Only `Vec` headers move between the two layouts.
    bucket_scratch: Vec<Vec<Outgoing<M>>>,
    scratch: Option<DispatchScratch>,
}

impl<M> fmt::Debug for InProcessTransport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcessTransport")
            .field("buckets", &self.buckets.len())
            .finish_non_exhaustive()
    }
}

impl<M> Default for InProcessTransport<M> {
    fn default() -> Self {
        InProcessTransport::new()
    }
}

impl<M> InProcessTransport<M> {
    /// Creates the backend (no buffers are allocated until the first
    /// parallel dispatch).
    pub fn new() -> Self {
        InProcessTransport {
            buckets: Vec::new(),
            bucket_scratch: Vec::new(),
            scratch: None,
        }
    }

    /// Serial delivery in canonical (sender-major) order; the only path
    /// that records trace events, because they must appear in that order.
    /// Outboxes are drained, so payloads move without cloning.
    fn deliver_serial(&mut self, b: RoundBarrier<'_, M>) {
        let RoundBarrier {
            round,
            traced,
            outboxes,
            mailboxes,
            ledger,
            trace,
            ..
        } = b;
        for mailbox in mailboxes.iter_mut() {
            mailbox.clear();
        }
        for outbox in outboxes.iter_mut() {
            for outgoing in outbox.drain(..) {
                ledger.record(outgoing.edge.index(), outgoing.bytes);
                if traced {
                    trace.record(TraceEvent {
                        round,
                        from: outgoing.sender,
                        to: outgoing.receiver,
                        edge: outgoing.edge,
                    });
                }
                mailboxes[outgoing.receiver.index()].push(Envelope {
                    edge: outgoing.edge,
                    from: outgoing.sender,
                    payload: outgoing.payload,
                });
            }
        }
    }
}

impl<M: Send + Sync> InProcessTransport<M> {
    /// Receiver-sharded parallel delivery, as a two-step bucket exchange:
    ///
    /// 1. *Route* — the execute-phase node shards drain their outboxes into
    ///    per-(sender shard × receiver shard) buckets, so every message is
    ///    copied once and each receiver shard's messages end up in exactly
    ///    `shards` buckets, already in canonical (node, send) order.
    /// 2. *Deliver* — worker `k` owns the contiguous receiver range of
    ///    shard `k`; it drains its bucket column in ascending sender-shard
    ///    order (payloads move, never clone), filling each mailbox in
    ///    exactly the order the serial path produces.
    ///
    /// Per-edge ledger partials accumulate in the shared atomic scratch
    /// (sums — order-independent) and are merged into the ledger when the
    /// barrier closes, in `O(edges touched this round)`. Unlike a naive
    /// scan-all barrier (every worker reading every outbox), total memory
    /// traffic is `O(messages)` regardless of the shard count.
    fn deliver_parallel(&mut self, b: RoundBarrier<'_, M>) {
        let RoundBarrier {
            shards,
            outboxes,
            mailboxes,
            ledger,
            ..
        } = b;
        let edge_slots = ledger.edge_slots();
        let scratch = self
            .scratch
            .get_or_insert_with(|| DispatchScratch::new(edge_slots, shards));
        // A churn plan can grow the ledger's edge-slot range after the
        // scratch was first sized (edge inserts); grow the accumulators to
        // match. New slots start at zero, like the originals.
        if scratch.edge_counts.len() < edge_slots {
            scratch
                .edge_counts
                .resize_with(edge_slots, || AtomicU32::new(0));
            scratch
                .edge_bytes
                .resize_with(edge_slots, || AtomicU64::new(0));
        }
        if self.buckets.len() != shards * shards {
            self.buckets.clear();
            self.buckets.resize_with(shards * shards, Vec::new);
            self.bucket_scratch.clear();
            self.bucket_scratch.resize_with(shards * shards, Vec::new);
        }
        let chunk = mailboxes.len().div_ceil(shards);

        // Route: node-sharded workers bucket their outboxes by receiver
        // shard. Buckets are empty here (drained by the previous delivery).
        std::thread::scope(|scope| {
            for (outboxes, row) in outboxes
                .chunks_mut(chunk)
                .zip(self.buckets.chunks_mut(shards))
            {
                scope.spawn(move || {
                    for outbox in outboxes {
                        for outgoing in outbox.drain(..) {
                            row[outgoing.receiver.index() / chunk].push(outgoing);
                        }
                    }
                });
            }
        });

        // Transpose to column-major so each delivery worker can borrow its
        // receiver shard's column as one contiguous slice (header moves
        // only, no message is copied).
        for sender_shard in 0..shards {
            for receiver_shard in 0..shards {
                self.bucket_scratch[receiver_shard * shards + sender_shard] =
                    std::mem::take(&mut self.buckets[sender_shard * shards + receiver_shard]);
            }
        }

        // Deliver: receiver-sharded workers drain their columns.
        let edge_counts = &scratch.edge_counts;
        let edge_bytes = &scratch.edge_bytes;
        std::thread::scope(|scope| {
            for (((shard, mailboxes), column), touched) in mailboxes
                .chunks_mut(chunk)
                .enumerate()
                .zip(self.bucket_scratch.chunks_mut(shards))
                .zip(scratch.touched.iter_mut())
            {
                let lo = shard * chunk;
                scope.spawn(move || {
                    for mailbox in mailboxes.iter_mut() {
                        mailbox.clear();
                    }
                    for bucket in column {
                        for outgoing in bucket.drain(..) {
                            let edge = outgoing.edge.index();
                            // First toucher of the round claims the edge for
                            // its merge list; the lists partition the
                            // touched set.
                            if edge_counts[edge].fetch_add(1, Ordering::Relaxed) == 0 {
                                touched.push(edge as u32);
                            }
                            edge_bytes[edge].fetch_add(outgoing.bytes, Ordering::Relaxed);
                            mailboxes[outgoing.receiver.index() - lo].push(Envelope {
                                edge: outgoing.edge,
                                from: outgoing.sender,
                                payload: outgoing.payload,
                            });
                        }
                    }
                });
            }
        });

        // Return the (empty, capacity-bearing) buckets to row-major for the
        // next round's route step.
        for sender_shard in 0..shards {
            for receiver_shard in 0..shards {
                self.buckets[sender_shard * shards + receiver_shard] = std::mem::take(
                    &mut self.bucket_scratch[receiver_shard * shards + sender_shard],
                );
            }
        }
        // Merge the partials in canonical shard order. Each touched edge
        // appears in exactly one list and its accumulators hold the full
        // round totals by now, so one `record_bulk` per edge reproduces the
        // serial ledger bit for bit.
        for touched in scratch.touched.iter_mut() {
            for &edge in touched.iter() {
                let edge = edge as usize;
                let count = u64::from(edge_counts[edge].swap(0, Ordering::Relaxed));
                let bytes = edge_bytes[edge].swap(0, Ordering::Relaxed);
                ledger.record_bulk(edge, count, bytes);
            }
            touched.clear();
        }
    }

    /// The work-stealing variant of the bucket exchange
    /// ([`Scheduling::Dynamic`]): the same two-step route/deliver shape,
    /// but over a chunk grid *finer than the worker count*, with both steps
    /// claiming chunks off shared atomic cursors — so a hub chunk's heavy
    /// column stalls one worker for one chunk, not one shard for the whole
    /// barrier.
    ///
    /// * The node range is split into `cols` chunks of `chunk` nodes: the
    ///   configured [`RoundBarrier::chunk_size`], coarsened until at most
    ///   [`DISPATCH_CHUNKS_PER_WORKER`] chunks per worker remain (the
    ///   bucket matrix is `cols²` and must stay cheap to transpose).
    /// * *Route* — a worker claims a sender chunk and drains its outboxes
    ///   into that chunk's bucket row, keyed by receiver chunk. Each bucket
    ///   is written by exactly one worker, in canonical (node, send) order.
    /// * *Deliver* — a worker claims a receiver chunk and drains its bucket
    ///   column in ascending sender-chunk order, filling each mailbox in
    ///   exactly the serial order. The chunk doubles as the cache block:
    ///   until its column is dry a worker touches only `chunk` consecutive
    ///   mailboxes, so receiver-side writes stay inside an L2-sized window
    ///   instead of striding the whole mailbox array.
    ///
    /// Ledger partials use the same order-independent atomic scratch as the
    /// static path (one touched list per worker), so the merged ledger is
    /// bit-identical to the serial one whichever worker claimed what.
    fn deliver_parallel_dynamic(&mut self, b: RoundBarrier<'_, M>) {
        let RoundBarrier {
            shards,
            chunk_size,
            outboxes,
            mailboxes,
            ledger,
            ..
        } = b;
        let node_count = mailboxes.len();
        let chunk = chunk_size
            .max(node_count.div_ceil(shards * DISPATCH_CHUNKS_PER_WORKER))
            .max(1);
        let cols = node_count.div_ceil(chunk);
        let edge_slots = ledger.edge_slots();
        let scratch = self
            .scratch
            .get_or_insert_with(|| DispatchScratch::new(edge_slots, shards));
        if scratch.edge_counts.len() < edge_slots {
            scratch
                .edge_counts
                .resize_with(edge_slots, || AtomicU32::new(0));
            scratch
                .edge_bytes
                .resize_with(edge_slots, || AtomicU64::new(0));
        }
        if self.buckets.len() != cols * cols {
            self.buckets.clear();
            self.buckets.resize_with(cols * cols, Vec::new);
            self.bucket_scratch.clear();
            self.bucket_scratch.resize_with(cols * cols, Vec::new);
        }
        let workers = shards.min(cols);

        // Route: claim sender chunks until the cursor runs dry.
        let route_chunks: RouteQueue<'_, M> = outboxes
            .chunks_mut(chunk)
            .zip(self.buckets.chunks_mut(cols))
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let cursor = &cursor;
                let route_chunks = &route_chunks;
                scope.spawn(move || loop {
                    let claimed = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = route_chunks.get(claimed) else {
                        break;
                    };
                    let (outboxes, row) = slot
                        .lock()
                        .expect("a chunk claim cannot be poisoned")
                        .take()
                        .expect("the cursor hands each chunk to exactly one worker");
                    for outbox in outboxes {
                        for outgoing in outbox.drain(..) {
                            row[outgoing.receiver.index() / chunk].push(outgoing);
                        }
                    }
                });
            }
        });

        // Transpose to column-major (header moves only), on the cols×cols
        // grid.
        for sender in 0..cols {
            for receiver in 0..cols {
                self.bucket_scratch[receiver * cols + sender] =
                    std::mem::take(&mut self.buckets[sender * cols + receiver]);
            }
        }

        // Deliver: claim receiver chunks; each column drains in ascending
        // sender-chunk order.
        let edge_counts = &scratch.edge_counts;
        let edge_bytes = &scratch.edge_bytes;
        let delivery_chunks: DeliveryQueue<'_, M> = mailboxes
            .chunks_mut(chunk)
            .zip(self.bucket_scratch.chunks_mut(cols))
            .enumerate()
            .map(|(slot, (mailboxes, column))| Mutex::new(Some((slot * chunk, mailboxes, column))))
            .collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for touched in scratch.touched.iter_mut().take(workers) {
                let cursor = &cursor;
                let delivery_chunks = &delivery_chunks;
                scope.spawn(move || loop {
                    let claimed = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = delivery_chunks.get(claimed) else {
                        break;
                    };
                    let (lo, mailboxes, column) = slot
                        .lock()
                        .expect("a chunk claim cannot be poisoned")
                        .take()
                        .expect("the cursor hands each chunk to exactly one worker");
                    for mailbox in mailboxes.iter_mut() {
                        mailbox.clear();
                    }
                    for bucket in column {
                        for outgoing in bucket.drain(..) {
                            let edge = outgoing.edge.index();
                            // First toucher of the round claims the edge for
                            // its merge list; the lists partition the
                            // touched set.
                            if edge_counts[edge].fetch_add(1, Ordering::Relaxed) == 0 {
                                touched.push(edge as u32);
                            }
                            edge_bytes[edge].fetch_add(outgoing.bytes, Ordering::Relaxed);
                            mailboxes[outgoing.receiver.index() - lo].push(Envelope {
                                edge: outgoing.edge,
                                from: outgoing.sender,
                                payload: outgoing.payload,
                            });
                        }
                    }
                });
            }
        });

        // Back to row-major for the next round's route step, then merge the
        // partials exactly like the static path (order-independent sums).
        for sender in 0..cols {
            for receiver in 0..cols {
                self.buckets[sender * cols + receiver] =
                    std::mem::take(&mut self.bucket_scratch[receiver * cols + sender]);
            }
        }
        for touched in scratch.touched.iter_mut() {
            for &edge in touched.iter() {
                let edge = edge as usize;
                let count = u64::from(edge_counts[edge].swap(0, Ordering::Relaxed));
                let bytes = edge_bytes[edge].swap(0, Ordering::Relaxed);
                ledger.record_bulk(edge, count, bytes);
            }
            touched.clear();
        }
    }
}

impl<M: Send + Sync> Transport<M> for InProcessTransport<M> {
    fn deliver(&mut self, barrier: RoundBarrier<'_, M>) -> RuntimeResult<BarrierOutcome> {
        let local_sent = barrier.local_sent;
        if barrier.shards == 1 || barrier.traced || local_sent == 0 {
            self.deliver_serial(barrier);
        } else if barrier.sched == Scheduling::Static {
            self.deliver_parallel(barrier);
        } else {
            self.deliver_parallel_dynamic(barrier);
        }
        Ok(BarrierOutcome::local(local_sent))
    }
}
