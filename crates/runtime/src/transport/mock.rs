//! A loopback test backend that pushes every payload through its wire
//! encoding.
//!
//! The mock delivers serially in canonical order like the in-process
//! backend, but every payload makes a round trip through its [`WireCodec`]
//! — so with no disturbances installed, a mock execution is bit-identical
//! to an in-process one **if and only if** the codec obeys its laws, which
//! is exactly what the cross-backend tests exploit. On top of that it can
//! record every frame it carries and inject deterministic wire-level
//! disturbances (drop, delay, corrupt) for transport-robustness tests.
//!
//! Wire disturbances live *below* the ledger: a dropped or delayed frame
//! was still sent (and is still counted as sent); only its delivery is
//! affected. This is deliberately different from the
//! [`FaultPlan`](crate::fault::FaultPlan) message faults, which model
//! protocol-level adversity and are resolved (and accounted) before any
//! transport sees the messages — `tests/fault_matrix.rs` proves the fault
//! plane is transport-independent by running the same plans over this
//! backend.

use super::codec::WireCodec;
use super::{BarrierOutcome, RoundBarrier, Transport};
use crate::error::{RuntimeError, RuntimeResult};
use crate::node::Envelope;
use crate::trace::TraceEvent;
use freelunch_graph::{EdgeId, NodeId};

/// One frame the mock carried: the resolved routing header plus the
/// encoded payload exactly as a wire transport would ship it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRecord {
    /// Round the frame was sent in (0 = initialization).
    pub round: u32,
    /// Edge the message travelled over.
    pub edge: EdgeId,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The encoded payload bytes.
    pub payload: Vec<u8>,
}

/// A deterministic wire-level disturbance rule, applied to the mock's
/// frame sequence (frames are numbered 1, 2, 3, … in canonical send order
/// across the whole execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disturbance {
    /// Silently lose every `nth` frame (the sender still counts it as
    /// sent; the receiver never sees it).
    DropEveryNth {
        /// Period of the loss (1 = every frame).
        nth: u64,
    },
    /// Hold every `nth` frame back and deliver it `rounds` barriers later
    /// (appended before that round's fresh traffic, in original order).
    DelayEveryNth {
        /// Period of the delay.
        nth: u64,
        /// Barriers to hold the frame for (≥ 1).
        rounds: u32,
    },
    /// Flip the lowest bit of the first payload byte of every `nth` frame.
    /// Depending on the codec this surfaces as a decode error (failing the
    /// barrier with [`RuntimeError::Transport`]) or as a silently altered
    /// message — both are realities of a corrupted wire.
    CorruptEveryNth {
        /// Period of the corruption.
        nth: u64,
    },
}

/// A delayed frame waiting for its due barrier.
#[derive(Debug)]
struct DelayedFrame {
    due_round: u32,
    edge: EdgeId,
    from: NodeId,
    to: NodeId,
    payload: Vec<u8>,
}

/// The loopback mock backend (see the module docs above).
#[derive(Debug, Default)]
pub struct MockTransport {
    disturbance: Option<Disturbance>,
    recording: bool,
    frames: Vec<FrameRecord>,
    delayed: Vec<DelayedFrame>,
    /// 1-based frame sequence counter driving the disturbance rules.
    sequence: u64,
    frames_dropped: u64,
    frames_delayed: u64,
    frames_corrupted: u64,
    scratch: Vec<u8>,
}

impl MockTransport {
    /// A neutral mock: encodes and decodes every payload, disturbs
    /// nothing, records nothing.
    pub fn new() -> Self {
        MockTransport::default()
    }

    /// Returns a copy of the builder with frame recording enabled: every
    /// carried frame is kept and exposed via [`MockTransport::frames`].
    pub fn recording(mut self) -> Self {
        self.recording = true;
        self
    }

    /// Returns a copy of the builder with the given disturbance installed.
    pub fn with_disturbance(mut self, disturbance: Disturbance) -> Self {
        self.disturbance = Some(disturbance);
        self
    }

    /// The recorded frames, in canonical send order (empty unless built
    /// with [`MockTransport::recording`]).
    pub fn frames(&self) -> &[FrameRecord] {
        &self.frames
    }

    /// Frames lost to [`Disturbance::DropEveryNth`] so far.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Frames held back by [`Disturbance::DelayEveryNth`] so far.
    pub fn frames_delayed(&self) -> u64 {
        self.frames_delayed
    }

    /// Frames altered by [`Disturbance::CorruptEveryNth`] so far.
    pub fn frames_corrupted(&self) -> u64 {
        self.frames_corrupted
    }

    /// Total frames the mock has carried (including disturbed ones).
    pub fn frames_carried(&self) -> u64 {
        self.sequence
    }
}

impl<M: WireCodec + Send + Sync + Clone + std::fmt::Debug> Transport<M> for MockTransport {
    fn deliver(&mut self, barrier: RoundBarrier<'_, M>) -> RuntimeResult<BarrierOutcome> {
        let RoundBarrier {
            round,
            traced,
            local_sent,
            outboxes,
            mailboxes,
            ledger,
            trace,
            churn,
            ..
        } = barrier;
        // Wire-faithfulness for the churn section too: every event the
        // engine applied this round must survive a codec round trip, just
        // like a TCP rank's round frame would carry it.
        for event in churn {
            let mut encoded = Vec::with_capacity(crate::churn::ChurnEvent::WIRE_BYTES);
            event.encode(&mut encoded);
            let decoded = crate::churn::ChurnEvent::decode(&encoded).map_err(|e| {
                RuntimeError::transport(format!(
                    "mock: churn event failed its wire round trip: {e}"
                ))
            })?;
            if decoded != *event {
                return Err(RuntimeError::transport(
                    "mock: churn event changed across its wire round trip".to_string(),
                ));
            }
        }
        for mailbox in mailboxes.iter_mut() {
            mailbox.clear();
        }
        // Release frames whose delay expired, before this round's fresh
        // traffic, in original send order. Their ledger/trace entries were
        // made when they were sent.
        let mut index = 0;
        while index < self.delayed.len() {
            if self.delayed[index].due_round <= round {
                let frame = self.delayed.remove(index);
                let payload = M::decode(&frame.payload).map_err(|e| {
                    RuntimeError::transport(format!(
                        "mock: delayed frame on edge {} failed to decode: {e}",
                        frame.edge
                    ))
                })?;
                mailboxes[frame.to.index()].push(Envelope {
                    edge: frame.edge,
                    from: frame.from,
                    payload,
                });
            } else {
                index += 1;
            }
        }
        for outbox in outboxes.iter_mut() {
            for outgoing in outbox.drain(..) {
                self.scratch.clear();
                outgoing.payload.encode(&mut self.scratch);
                if self.scratch.len() as u64 != outgoing.bytes {
                    return Err(RuntimeError::transport(format!(
                        "mock: codec/payload_bytes mismatch on edge {}: encoded {} bytes, \
                         payload_bytes charges {} (see docs/TRANSPORT.md)",
                        outgoing.edge,
                        self.scratch.len(),
                        outgoing.bytes
                    )));
                }
                // Sender-side accounting, identical to the in-process path.
                ledger.record(outgoing.edge.index(), outgoing.bytes);
                if traced {
                    trace.record(TraceEvent {
                        round,
                        from: outgoing.sender,
                        to: outgoing.receiver,
                        edge: outgoing.edge,
                    });
                }
                self.sequence += 1;
                if self.recording {
                    self.frames.push(FrameRecord {
                        round,
                        edge: outgoing.edge,
                        from: outgoing.sender,
                        to: outgoing.receiver,
                        payload: self.scratch.clone(),
                    });
                }
                match self.disturbance {
                    Some(Disturbance::DropEveryNth { nth })
                        if self.sequence.is_multiple_of(nth) =>
                    {
                        self.frames_dropped += 1;
                        continue;
                    }
                    Some(Disturbance::DelayEveryNth { nth, rounds })
                        if self.sequence.is_multiple_of(nth) =>
                    {
                        self.frames_delayed += 1;
                        self.delayed.push(DelayedFrame {
                            due_round: round + rounds.max(1),
                            edge: outgoing.edge,
                            from: outgoing.sender,
                            to: outgoing.receiver,
                            payload: self.scratch.clone(),
                        });
                        continue;
                    }
                    Some(Disturbance::CorruptEveryNth { nth })
                        if self.sequence.is_multiple_of(nth) =>
                    {
                        self.frames_corrupted += 1;
                        if let Some(byte) = self.scratch.first_mut() {
                            *byte ^= 1;
                        }
                    }
                    _ => {}
                }
                let payload = M::decode(&self.scratch).map_err(|e| {
                    RuntimeError::transport(format!(
                        "mock: frame on edge {} failed to decode: {e}",
                        outgoing.edge
                    ))
                })?;
                mailboxes[outgoing.receiver.index()].push(Envelope {
                    edge: outgoing.edge,
                    from: outgoing.sender,
                    payload,
                });
            }
        }
        Ok(BarrierOutcome::local(local_sent))
    }
}
