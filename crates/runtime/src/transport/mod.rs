//! Pluggable delivery backends for the round barrier.
//!
//! The engine splits every round into an *execute* phase (stepping the node
//! programs, producing per-node outboxes of resolved
//! [`Outgoing`] messages) and a *dispatch* phase that
//! moves each payload into its receiver's mailbox. Everything up to the
//! barrier — routing, fault injection, sender-side metrics — is
//! backend-independent; the barrier itself is a [`Transport`]:
//!
//! * [`InProcessTransport`] — the default: the zero-allocation
//!   double-buffered fast path (serial or receiver-sharded parallel
//!   delivery) the engine has always used. Payloads move by value, nothing
//!   is serialized.
//! * [`TcpTransport`] — multi-process execution over localhost (or any
//!   reachable peers): each process owns a contiguous node range, and the
//!   barrier exchanges one length-prefixed binary frame per peer per round.
//!   Requires the message type to implement [`WireCodec`].
//! * [`MockTransport`] — a loopback test backend that pushes every payload
//!   through its wire encoding and can record, delay, drop or corrupt
//!   frames, for transport-level tests that stay in one process.
//!
//! The contract every backend must uphold — canonical mailbox order,
//! sender-side ledger accounting, the codec/`payload_bytes` equivalence —
//! is specified in `docs/TRANSPORT.md`. Upholding it is what makes the same
//! `NodeProgram` + workload + seed produce **bit-identical outputs,
//! [`ExecutionMetrics`] and [`MessageLedger`]** on every backend;
//! `tests/determinism_matrix.rs` pins this across all three.

mod codec;
mod in_process;
mod mock;
mod tcp;

pub use codec::{check_size_and_padding, pad_to_size, CodecError, WireCodec};
pub use in_process::InProcessTransport;
pub use mock::{Disturbance, FrameRecord, MockTransport};
pub use tcp::{RejoinHello, TcpConfig, TcpTransport};

use crate::churn::ChurnEvent;
use crate::engine::Scheduling;
use crate::error::RuntimeResult;
use crate::metrics::{ExecutionMetrics, MessageLedger};
use crate::node::{Envelope, Outgoing};
use crate::trace::Trace;
use std::fmt;
use std::ops::Range;

/// The engine's view of one closed round barrier, handed to
/// [`Transport::deliver`].
///
/// By the time a backend sees the barrier, the engine has already run the
/// fault pre-pass (dropped/duplicated messages are resolved; survivors sit
/// in the outboxes in canonical order) and the sender-side metrics pass
/// (`metrics` already counts this round's local sends). The backend's job
/// is delivery and per-edge ledger accounting:
///
/// * move every outbox message into `mailboxes[receiver]`, filling each
///   mailbox in ascending sender order (per sender, in send order) — the
///   canonical order the serial engine produces;
/// * record every locally sent message into `ledger` (sender-side: a
///   message is recorded by the rank that sent it, once, with its
///   [`Outgoing::bytes`] size);
/// * when `traced`, record a [`TraceEvent`](crate::trace::TraceEvent) per
///   message in canonical send order (only backends whose
///   [`Transport::supports_tracing`] returns `true` see `traced == true`).
#[derive(Debug)]
pub struct RoundBarrier<'a, M> {
    /// The round whose sends are being delivered (0 = initialization).
    pub round: u32,
    /// Effective worker-shard count of this execution (a parallelism hint;
    /// a backend may ignore it and deliver serially).
    pub shards: usize,
    /// The execution's [`Scheduling`] mode — like `shards`, a parallelism
    /// hint. The in-process backend mirrors it: static receiver-sharded
    /// delivery under [`Scheduling::Static`], chunk-claiming delivery
    /// workers under [`Scheduling::Dynamic`]. Wire backends may ignore it.
    pub sched: Scheduling,
    /// Target nodes per work-stealing chunk
    /// ([`NetworkConfig::chunk_size`](crate::engine::NetworkConfig::chunk_size));
    /// only meaningful under [`Scheduling::Dynamic`]. A backend may clamp
    /// it (the in-process dispatch coarsens the grid so its bucket matrix
    /// stays small — see `docs/PERF.md` §2).
    pub chunk_size: usize,
    /// Whether this round must record trace events (canonical order).
    pub traced: bool,
    /// Number of messages in the local outboxes (post fault pre-pass).
    pub local_sent: u64,
    /// Per-node halted flags; only the entries of the engine's owned range
    /// are meaningful (a distributed backend exchanges these counts so
    /// every rank can agree on global termination).
    pub halted: &'a [bool],
    /// Per-node outboxes in canonical node order; the backend drains them.
    pub outboxes: &'a mut [Vec<Outgoing<M>>],
    /// Back mailbox buffer to fill (the engine swaps it in next round). The
    /// backend must clear stale contents before delivering.
    pub mailboxes: &'a mut [Vec<Envelope<M>>],
    /// Execution metrics; local sends are already counted. A distributed
    /// backend merges peer ranks' per-node send counts here.
    pub metrics: &'a mut ExecutionMetrics,
    /// The message ledger to record delivered traffic into.
    pub ledger: &'a mut MessageLedger,
    /// The trace log (only written when `traced`).
    pub trace: &'a mut Trace,
    /// Churn events the engine applied at the top of this round, in
    /// canonical application order (empty when no
    /// [`ChurnPlan`](crate::churn::ChurnPlan) is installed). Purely
    /// observational for in-process backends; wire backends encode them
    /// into the round frame so every rank can verify it applied the
    /// identical topology update.
    pub churn: &'a [ChurnEvent],
}

/// What a [`Transport::deliver`] call reports back to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierOutcome {
    /// Messages sent network-wide this round (every rank's post-fault
    /// outbox total). Single-process backends report
    /// [`RoundBarrier::local_sent`]; this feeds
    /// [`Network::pending_messages`](crate::engine::Network::pending_messages).
    pub delivered: u64,
    /// Halted nodes outside the engine's owned range, as exchanged at this
    /// barrier (0 for single-process backends). Under
    /// [`RecoveryPolicy::DegradeToSurvivors`] the nodes of a dead rank are
    /// counted here, so termination detection keeps working without them.
    pub remote_halted: usize,
    /// Peers that died and were re-admitted through the rejoin handshake
    /// during this barrier (always 0 on single-process backends; see
    /// `docs/RECOVERY.md`).
    pub recovered_peers: usize,
    /// Peers declared dead and degraded to survivors during this barrier
    /// under [`RecoveryPolicy::DegradeToSurvivors`] (always 0 on
    /// single-process backends).
    pub lost_peers: usize,
}

impl BarrierOutcome {
    /// The outcome of a single-process barrier: everything sent locally was
    /// delivered, no remote nodes exist, no peers died or recovered.
    pub fn local(delivered: u64) -> Self {
        BarrierOutcome {
            delivered,
            remote_halted: 0,
            recovered_peers: 0,
            lost_peers: 0,
        }
    }
}

/// How a distributed barrier reacts when a peer rank stops responding (a
/// dead socket, a liveness deadline blown past `io_timeout`).
///
/// The policy is threaded through [`BarrierOutcome`]: a recovery shows up
/// as [`BarrierOutcome::recovered_peers`], a degradation as
/// [`BarrierOutcome::lost_peers`] plus the dead rank's nodes in
/// [`BarrierOutcome::remote_halted`]. Single-process backends never consult
/// it. Semantics are specified in `docs/RECOVERY.md`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Abort the barrier with a precise
    /// [`RuntimeError::Transport`](crate::error::RuntimeError::Transport)
    /// the moment a peer is declared dead (the default, and the pre-recovery
    /// behavior).
    #[default]
    FailFast,
    /// Block the barrier and wait for the dead rank to relaunch from its
    /// checkpoint and rejoin through the handshake, for up to `attempts`
    /// full liveness windows; abort only if it never comes back.
    Retry {
        /// Number of liveness windows (`io_timeout` each) to wait for the
        /// rejoin before giving up.
        attempts: u32,
    },
    /// Declare the rank dead and continue without it: its nodes are mapped
    /// onto the existing fail-stop crash semantics (counted as halted, their
    /// traffic gone), mirroring a
    /// [`FaultPlan`](crate::fault::FaultPlan) crash of the whole range.
    DegradeToSurvivors,
}

/// A delivery backend for the round barrier.
///
/// Implementations move one round's outbox messages into the receiving
/// mailboxes — in process, over sockets, or through a test double — while
/// keeping every observable of the execution bit-identical to the
/// [`InProcessTransport`] reference (see the [module docs](self) and
/// `docs/TRANSPORT.md`).
pub trait Transport<M>: fmt::Debug + Send {
    /// Delivers one closed round. See [`RoundBarrier`] for the contract.
    ///
    /// # Errors
    ///
    /// Wire backends return
    /// [`RuntimeError::Transport`](crate::error::RuntimeError::Transport)
    /// on I/O failures, timeouts, desynchronized frames, or codec
    /// violations. A failed barrier leaves
    /// the network in an unspecified (but memory-safe) state; callers
    /// should discard it.
    fn deliver(&mut self, barrier: RoundBarrier<'_, M>) -> RuntimeResult<BarrierOutcome>;

    /// Whether this backend can record canonical-order traces.
    /// [`Network::with_transport`](crate::engine::Network::with_transport)
    /// rejects [`TraceMode::Full`](crate::trace::TraceMode::Full) configs
    /// on backends that return `false`.
    fn supports_tracing(&self) -> bool {
        true
    }

    /// The contiguous node range this process steps locally. Single-process
    /// backends own everything; a distributed backend owns its rank's
    /// chunk. Programs outside the range are constructed but never stepped.
    fn owned_range(&self, node_count: usize) -> Range<usize> {
        0..node_count
    }
}
