//! Multi-process execution over TCP: each process owns a contiguous node
//! range and the round barrier exchanges one length-prefixed binary frame
//! per peer per round.
//!
//! # Frame protocol
//!
//! All integers are little-endian. Per barrier, every rank sends every peer
//! exactly one frame (even when it has no messages for that peer — the
//! frame *is* the barrier):
//!
//! ```text
//! [u32 body_len]                          // bytes after this field
//! [u32 round] [u32 sender_rank]           // lockstep check
//! [u64 sent_total]                        // sender's post-fault outbox total
//! [u32 halted] [u32 msg_count] [u32 stats_len] [u32 churn_count]
//! <stats section, stats_len bytes>        // identical in every peer frame
//! <churn_count churn events, 20 bytes each>
//! <msg_count message records>
//! message record := [u64 edge] [u32 sender] [u32 receiver]
//!                   [u32 payload_len] <payload bytes>
//! ```
//!
//! The stats section is what makes every rank's [`MessageLedger`] and
//! [`ExecutionMetrics`] **globally identical** (the cross-backend identity
//! contract of `docs/TRANSPORT.md`): each rank records its own sends
//! per-message at the barrier, broadcasts per-node send counts, per-edge
//! `(count, bytes)` aggregates and this round's fault deltas, and applies
//! every peer's stats through the order-independent bulk recorders:
//!
//! ```text
//! stats := [u32 node_entries] ([u32 node] [u64 count])*
//!          [u32 edge_entries] ([u64 edge] [u64 count] [u64 bytes])*
//!          [u64 dropped_random] [u64 dropped_link_cut]
//!          [u64 dropped_crash]  [u64 duplicated]
//! ```
//!
//! The churn section carries the [`ChurnEvent`](crate::churn::ChurnEvent)s
//! the sending rank applied at the top of this round, in canonical order
//! and in their [`WireCodec`] encoding. Every rank resolves the same
//! [`ChurnPlan`](crate::churn::ChurnPlan) locally, so the section is a
//! *verification* channel, not an information channel: the receiver decodes
//! each event and checks it against the event it applied itself — any
//! difference means the ranks' topologies diverged, and the barrier fails
//! as desynchronized rather than silently running on different graphs.
//!
//! Mailboxes are filled in ascending rank-slot order (a rank drains its own
//! pending messages at its own slot); because ranks own ascending contiguous
//! node ranges and every frame lists messages in canonical (node, send)
//! order, this reproduces exactly the mailbox order of the serial in-process
//! barrier.
//!
//! `sent_total` sums to the network-wide send count, so
//! [`run_until_quiet`](crate::engine::Network::run_until_quiet) stays in
//! lockstep across ranks; `halted` counts let every rank agree on global
//! termination for [`run_until_halt`](crate::engine::Network::run_until_halt).
//!
//! # Connection setup
//!
//! Rank `r` listens on `peers[r]`, actively connects to every rank below it
//! (retrying until `connect_timeout`), and accepts one connection from every
//! rank above it. Both sides exchange a 16-byte handshake
//! (`magic, version, world, rank`) before any frame moves. All sockets run
//! with `TCP_NODELAY` and `io_timeout` read/write deadlines; every failure
//! — setup, timeout, desynchronized or malformed frame, codec violation —
//! surfaces as [`RuntimeError::Transport`].
//!
//! The backend does not support [`TraceMode::Full`](crate::trace::TraceMode)
//! (canonical-order trace events cannot be reconstructed from per-peer
//! frames without shipping the full event stream);
//! [`Network::with_transport`](crate::engine::Network::with_transport)
//! rejects traced configs up front.
//!
//! [`MessageLedger`]: crate::metrics::MessageLedger
//! [`ExecutionMetrics`]: crate::metrics::ExecutionMetrics

use super::codec::WireCodec;
use super::{BarrierOutcome, RoundBarrier, Transport};
use crate::error::{RuntimeError, RuntimeResult};
use crate::metrics::FaultTotals;
use crate::node::{Envelope, Outgoing};
use freelunch_graph::{EdgeId, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Handshake magic: `"FLTP"` (freelunch transport).
const MAGIC: u32 = 0x464C_5450;
/// Frame protocol version; bumped on any wire-format change (v2 added the
/// churn-event section).
const VERSION: u32 = 2;
/// Upper bound on a frame body, to reject absurd lengths from a corrupt or
/// desynchronized stream before allocating.
const MAX_BODY: u32 = 1 << 30;
/// Fixed part of the frame body: round, sender_rank, sent_total, halted,
/// msg_count, stats_len, churn_count.
const BODY_FIXED: usize = 4 + 4 + 8 + 4 + 4 + 4 + 4;

/// Configuration of a [`TcpTransport`] process group.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This process's rank in `0..peers.len()`.
    pub rank: usize,
    /// One listen address per rank, identical on every process; rank `r`
    /// listens on `peers[r]`. `peers.len()` is the world size.
    pub peers: Vec<SocketAddr>,
    /// Deadline for the whole connection setup (active connects retry until
    /// it expires; pending accepts abort when it does).
    pub connect_timeout: Duration,
    /// Per-operation read/write deadline on established sockets. A barrier
    /// that waits longer than this on a peer fails with
    /// [`RuntimeError::Transport`].
    pub io_timeout: Duration,
}

impl TcpConfig {
    /// A config with default timeouts (10 s connect, 30 s per I/O op).
    pub fn new(rank: usize, peers: Vec<SocketAddr>) -> Self {
        TcpConfig {
            rank,
            peers,
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// The TCP delivery backend (the module docs above describe the protocol).
pub struct TcpTransport<M> {
    rank: usize,
    world: usize,
    /// Established streams, indexed by peer rank (`None` at the own slot).
    streams: Vec<Option<TcpStream>>,
    /// Per-peer message-record bytes accumulated while draining outboxes.
    frame_bufs: Vec<Vec<u8>>,
    /// Per-peer record counts matching `frame_bufs`.
    frame_counts: Vec<u32>,
    /// The assembled frame (header + stats + records), one write per peer.
    send_buf: Vec<u8>,
    /// Incoming frame body buffer, reused across rounds.
    read_buf: Vec<u8>,
    /// Payload encoding scratch.
    payload_buf: Vec<u8>,
    /// The shared stats section of this round's frames.
    stats_buf: Vec<u8>,
    /// The encoded churn-event section of this round's frames (identical
    /// in every peer frame, like the stats).
    churn_buf: Vec<u8>,
    /// Messages addressed to locally owned receivers, held until this
    /// rank's slot in the delivery order comes up.
    local_pending: Vec<Outgoing<M>>,
    /// Per-edge `(count, bytes)` aggregates of this round's own sends
    /// (`BTreeMap` so the stats section lists edges in ascending order).
    edge_stats: BTreeMap<u64, (u64, u64)>,
    /// Ledger fault totals as of the previous barrier, for delta encoding.
    prev_faults: FaultTotals,
}

impl<M> fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish_non_exhaustive()
    }
}

fn transport_io(context: &str, err: std::io::Error) -> RuntimeError {
    RuntimeError::transport(format!("{context}: {err}"))
}

fn write_handshake(stream: &mut TcpStream, world: usize, rank: usize) -> RuntimeResult<()> {
    let mut hs = [0u8; 16];
    hs[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    hs[4..8].copy_from_slice(&VERSION.to_le_bytes());
    hs[8..12].copy_from_slice(&(world as u32).to_le_bytes());
    hs[12..16].copy_from_slice(&(rank as u32).to_le_bytes());
    stream
        .write_all(&hs)
        .map_err(|e| transport_io("handshake write", e))
}

fn read_handshake(stream: &mut TcpStream, world: usize) -> RuntimeResult<usize> {
    let mut hs = [0u8; 16];
    stream
        .read_exact(&mut hs)
        .map_err(|e| transport_io("handshake read", e))?;
    let word = |i: usize| u32::from_le_bytes([hs[i], hs[i + 1], hs[i + 2], hs[i + 3]]);
    if word(0) != MAGIC {
        return Err(RuntimeError::transport(format!(
            "handshake: bad magic {:#010x} (not a freelunch transport peer?)",
            word(0)
        )));
    }
    if word(4) != VERSION {
        return Err(RuntimeError::transport(format!(
            "handshake: protocol version mismatch: peer speaks v{}, this build speaks v{VERSION}",
            word(4)
        )));
    }
    if word(8) as usize != world {
        return Err(RuntimeError::transport(format!(
            "handshake: world-size mismatch: peer configured for {} ranks, this process for {world}",
            word(8)
        )));
    }
    Ok(word(12) as usize)
}

impl<M> TcpTransport<M> {
    /// Binds a listener on `config.peers[config.rank]` and establishes the
    /// full peer mesh. This is the constructor for genuinely separate
    /// processes (see `examples/tcp_transport.rs`).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Transport`] on an invalid config, bind failure, or
    /// any peer not completing its handshake before `connect_timeout`.
    pub fn connect(config: &TcpConfig) -> RuntimeResult<Self> {
        if config.rank >= config.peers.len() {
            return Err(RuntimeError::transport(format!(
                "rank {} out of range for a {}-rank world",
                config.rank,
                config.peers.len()
            )));
        }
        let listener = TcpListener::bind(config.peers[config.rank])
            .map_err(|e| transport_io("bind listener", e))?;
        TcpTransport::with_listener(listener, config)
    }

    /// Establishes the peer mesh over an already-bound listener. Tests bind
    /// every rank's listener on `127.0.0.1:0` *first*, collect the actual
    /// addresses into `config.peers`, and only then connect — which makes
    /// the rendezvous free of port races.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Transport`] on an invalid config or any peer not
    /// completing its handshake before `connect_timeout`.
    pub fn with_listener(listener: TcpListener, config: &TcpConfig) -> RuntimeResult<Self> {
        let world = config.peers.len();
        let rank = config.rank;
        if rank >= world {
            return Err(RuntimeError::transport(format!(
                "rank {rank} out of range for a {world}-rank world"
            )));
        }
        let deadline = Instant::now() + config.connect_timeout;
        let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();

        // Actively connect to every lower rank (their listeners may still be
        // coming up, so retry until the deadline).
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let stream = loop {
                match TcpStream::connect_timeout(
                    &config.peers[peer],
                    Duration::from_millis(200).min(config.connect_timeout),
                ) {
                    Ok(stream) => break stream,
                    Err(err) => {
                        if Instant::now() >= deadline {
                            return Err(RuntimeError::transport(format!(
                                "connect to rank {peer} at {}: {err}",
                                config.peers[peer]
                            )));
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            };
            let mut stream = stream;
            stream
                .set_nodelay(true)
                .map_err(|e| transport_io("set_nodelay", e))?;
            stream
                .set_read_timeout(Some(config.io_timeout))
                .map_err(|e| transport_io("set_read_timeout", e))?;
            write_handshake(&mut stream, world, rank)?;
            let peer_rank = read_handshake(&mut stream, world)?;
            if peer_rank != peer {
                return Err(RuntimeError::transport(format!(
                    "connected to {} expecting rank {peer}, but it identifies as rank {peer_rank}",
                    config.peers[peer]
                )));
            }
            *slot = Some(stream);
        }

        // Accept one connection from every higher rank.
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_io("listener set_nonblocking", e))?;
        let mut expected = world - rank - 1;
        while expected > 0 {
            match listener.accept() {
                Ok((mut stream, addr)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| transport_io("stream set_blocking", e))?;
                    stream
                        .set_nodelay(true)
                        .map_err(|e| transport_io("set_nodelay", e))?;
                    stream
                        .set_read_timeout(Some(config.io_timeout))
                        .map_err(|e| transport_io("set_read_timeout", e))?;
                    let peer_rank = read_handshake(&mut stream, world)?;
                    if peer_rank <= rank || peer_rank >= world {
                        return Err(RuntimeError::transport(format!(
                            "accepted {addr} identifying as rank {peer_rank}, which must not \
                             connect to rank {rank}"
                        )));
                    }
                    if streams[peer_rank].is_some() {
                        return Err(RuntimeError::transport(format!(
                            "rank {peer_rank} connected twice"
                        )));
                    }
                    write_handshake(&mut stream, world, rank)?;
                    streams[peer_rank] = Some(stream);
                    expected -= 1;
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(RuntimeError::transport(format!(
                            "timed out waiting for {expected} higher-rank peer(s) to connect"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(err) => return Err(transport_io("accept", err)),
            }
        }

        for stream in streams.iter().flatten() {
            stream
                .set_write_timeout(Some(config.io_timeout))
                .map_err(|e| transport_io("set_write_timeout", e))?;
        }

        Ok(TcpTransport {
            rank,
            world,
            streams,
            frame_bufs: (0..world).map(|_| Vec::new()).collect(),
            frame_counts: vec![0; world],
            send_buf: Vec::new(),
            read_buf: Vec::new(),
            payload_buf: Vec::new(),
            stats_buf: Vec::new(),
            churn_buf: Vec::new(),
            local_pending: Vec::new(),
            edge_stats: BTreeMap::new(),
            prev_faults: FaultTotals::default(),
        })
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the process group.
    pub fn world_size(&self) -> usize {
        self.world
    }
}

/// Sequential little-endian reader over a received frame body.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    peer: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, len: usize) -> RuntimeResult<&'a [u8]> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(RuntimeError::transport(format!(
                "frame from rank {} truncated: wanted {len} bytes at offset {}, body is {} bytes",
                self.peer,
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u32(&mut self) -> RuntimeResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> RuntimeResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// The contiguous node range rank `rank` of `world` owns (the same
/// `div_ceil` chunking the sharded execute phase uses).
fn rank_range(rank: usize, world: usize, node_count: usize) -> Range<usize> {
    let chunk = node_count.div_ceil(world);
    let lo = (rank * chunk).min(node_count);
    let hi = (lo + chunk).min(node_count);
    lo..hi
}

impl<M: WireCodec + Clone + fmt::Debug + Send + Sync> TcpTransport<M> {
    /// Drains the local outboxes: records every send in the ledger
    /// (sender-side), stages locally addressed messages, encodes remote
    /// ones into per-peer record buffers, and accumulates the stats
    /// aggregates. Returns the per-node count entries for the stats
    /// section.
    fn stage_local_sends(
        &mut self,
        outboxes: &mut [Vec<Outgoing<M>>],
        ledger: &mut crate::metrics::MessageLedger,
        chunk: usize,
    ) -> RuntimeResult<Vec<(u32, u64)>> {
        let mut node_counts = Vec::new();
        for (node, outbox) in outboxes.iter_mut().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            node_counts.push((node as u32, outbox.len() as u64));
            for outgoing in outbox.drain(..) {
                ledger.record(outgoing.edge.index(), outgoing.bytes);
                let entry = self.edge_stats.entry(outgoing.edge.raw()).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += outgoing.bytes;
                let dest = outgoing.receiver.index() / chunk;
                if dest == self.rank {
                    self.local_pending.push(outgoing);
                    continue;
                }
                self.payload_buf.clear();
                outgoing.payload.encode(&mut self.payload_buf);
                if self.payload_buf.len() as u64 != outgoing.bytes {
                    return Err(RuntimeError::transport(format!(
                        "codec/payload_bytes mismatch on edge {}: encoded {} bytes, \
                         payload_bytes charges {} (see docs/TRANSPORT.md)",
                        outgoing.edge,
                        self.payload_buf.len(),
                        outgoing.bytes
                    )));
                }
                let buf = &mut self.frame_bufs[dest];
                buf.extend_from_slice(&outgoing.edge.raw().to_le_bytes());
                buf.extend_from_slice(&outgoing.sender.raw().to_le_bytes());
                buf.extend_from_slice(&outgoing.receiver.raw().to_le_bytes());
                buf.extend_from_slice(&(self.payload_buf.len() as u32).to_le_bytes());
                buf.extend_from_slice(&self.payload_buf);
                self.frame_counts[dest] += 1;
            }
        }
        Ok(node_counts)
    }

    /// Builds the stats section shared by every peer frame for this round.
    fn build_stats(&mut self, node_counts: &[(u32, u64)], faults: &FaultTotals) {
        self.stats_buf.clear();
        let buf = &mut self.stats_buf;
        buf.extend_from_slice(&(node_counts.len() as u32).to_le_bytes());
        for &(node, count) in node_counts {
            buf.extend_from_slice(&node.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
        buf.extend_from_slice(&(self.edge_stats.len() as u32).to_le_bytes());
        for (&edge, &(count, bytes)) in &self.edge_stats {
            buf.extend_from_slice(&edge.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
            buf.extend_from_slice(&bytes.to_le_bytes());
        }
        let delta = |now: u64, prev: u64| now - prev;
        buf.extend_from_slice(
            &delta(faults.dropped_random, self.prev_faults.dropped_random).to_le_bytes(),
        );
        buf.extend_from_slice(
            &delta(faults.dropped_link_cut, self.prev_faults.dropped_link_cut).to_le_bytes(),
        );
        buf.extend_from_slice(
            &delta(faults.dropped_crash, self.prev_faults.dropped_crash).to_le_bytes(),
        );
        buf.extend_from_slice(&delta(faults.duplicated, self.prev_faults.duplicated).to_le_bytes());
    }

    /// Writes this round's frame to peer `peer` (one buffered `write_all`).
    fn write_frame(
        &mut self,
        peer: usize,
        round: u32,
        sent_total: u64,
        halted: u32,
    ) -> RuntimeResult<()> {
        let body_len =
            BODY_FIXED + self.stats_buf.len() + self.churn_buf.len() + self.frame_bufs[peer].len();
        if body_len as u64 > u64::from(MAX_BODY) {
            return Err(RuntimeError::transport(format!(
                "frame to rank {peer} exceeds the {MAX_BODY}-byte body limit ({body_len} bytes)"
            )));
        }
        self.send_buf.clear();
        self.send_buf
            .extend_from_slice(&(body_len as u32).to_le_bytes());
        self.send_buf.extend_from_slice(&round.to_le_bytes());
        self.send_buf
            .extend_from_slice(&(self.rank as u32).to_le_bytes());
        self.send_buf.extend_from_slice(&sent_total.to_le_bytes());
        self.send_buf.extend_from_slice(&halted.to_le_bytes());
        self.send_buf
            .extend_from_slice(&self.frame_counts[peer].to_le_bytes());
        self.send_buf
            .extend_from_slice(&(self.stats_buf.len() as u32).to_le_bytes());
        let churn_count = self.churn_buf.len() / crate::churn::ChurnEvent::WIRE_BYTES;
        self.send_buf
            .extend_from_slice(&(churn_count as u32).to_le_bytes());
        self.send_buf.extend_from_slice(&self.stats_buf);
        self.send_buf.extend_from_slice(&self.churn_buf);
        self.send_buf.extend_from_slice(&self.frame_bufs[peer]);
        let stream = self.streams[peer]
            .as_mut()
            .expect("peer stream present by construction");
        stream
            .write_all(&self.send_buf)
            .map_err(|e| transport_io(&format!("write frame to rank {peer}"), e))?;
        stream
            .flush()
            .map_err(|e| transport_io(&format!("flush frame to rank {peer}"), e))
    }

    /// Reads peer `peer`'s frame body into `read_buf` and returns it.
    fn read_frame(&mut self, peer: usize) -> RuntimeResult<()> {
        let stream = self.streams[peer]
            .as_mut()
            .expect("peer stream present by construction");
        let mut len = [0u8; 4];
        stream
            .read_exact(&mut len)
            .map_err(|e| transport_io(&format!("read frame length from rank {peer}"), e))?;
        let body_len = u32::from_le_bytes(len);
        if body_len > MAX_BODY || (body_len as usize) < BODY_FIXED {
            return Err(RuntimeError::transport(format!(
                "desynchronized stream from rank {peer}: implausible frame body of {body_len} bytes"
            )));
        }
        self.read_buf.resize(body_len as usize, 0);
        stream
            .read_exact(&mut self.read_buf)
            .map_err(|e| transport_io(&format!("read frame body from rank {peer}"), e))
    }
}

impl<M: WireCodec + Clone + fmt::Debug + Send + Sync> Transport<M> for TcpTransport<M> {
    fn deliver(&mut self, barrier: RoundBarrier<'_, M>) -> RuntimeResult<BarrierOutcome> {
        let RoundBarrier {
            round,
            local_sent,
            halted,
            outboxes,
            mailboxes,
            metrics,
            ledger,
            churn,
            ..
        } = barrier;
        let node_count = mailboxes.len();
        let chunk = node_count.div_ceil(self.world);
        let owned = rank_range(self.rank, self.world, node_count);

        for buf in &mut self.frame_bufs {
            buf.clear();
        }
        self.frame_counts.fill(0);
        self.local_pending.clear();
        self.edge_stats.clear();

        let node_counts = self.stage_local_sends(outboxes, ledger, chunk)?;
        // `prev_faults` holds the totals as of the end of the *previous*
        // barrier — i.e. after merging every peer's deltas — so the delta
        // against it covers exactly this rank's own new drops/duplications
        // this round. Snapshotting here instead (before the merge below)
        // would fold the peers' last-round deltas into this rank's next
        // delta and echo them back, double-counting faults forever.
        let fault_totals = ledger.fault_totals();
        self.build_stats(&node_counts, &fault_totals);
        self.churn_buf.clear();
        for event in churn {
            event.encode(&mut self.churn_buf);
        }
        let halted_local = halted[owned.clone()].iter().filter(|&&h| h).count() as u32;

        // Write every peer's frame first (frames buffer in the kernel), then
        // read; no read depends on a peer having read ours.
        for peer in 0..self.world {
            if peer != self.rank {
                self.write_frame(peer, round, local_sent, halted_local)?;
            }
        }

        for mailbox in mailboxes.iter_mut() {
            mailbox.clear();
        }

        let mut delivered = local_sent;
        let mut remote_halted = 0usize;
        // Deliver in ascending rank-slot order — that is ascending sender
        // order, which reproduces the canonical serial mailbox order.
        for slot in 0..self.world {
            if slot == self.rank {
                for outgoing in self.local_pending.drain(..) {
                    mailboxes[outgoing.receiver.index()].push(Envelope {
                        edge: outgoing.edge,
                        from: outgoing.sender,
                        payload: outgoing.payload,
                    });
                }
                continue;
            }
            self.read_frame(slot)?;
            let mut reader = FrameReader {
                buf: &self.read_buf,
                pos: 0,
                peer: slot,
            };
            let peer_round = reader.u32()?;
            let peer_rank = reader.u32()? as usize;
            if peer_round != round || peer_rank != slot {
                return Err(RuntimeError::transport(format!(
                    "desynchronized stream: expected round {round} from rank {slot}, \
                     got round {peer_round} from rank {peer_rank}"
                )));
            }
            delivered += reader.u64()?;
            remote_halted += reader.u32()? as usize;
            let msg_count = reader.u32()?;
            let stats_len = reader.u32()? as usize;
            let churn_count = reader.u32()? as usize;

            // Stats: merge through the order-independent bulk recorders.
            let stats_end = reader.pos + stats_len;
            let node_entries = reader.u32()?;
            for _ in 0..node_entries {
                let node = reader.u32()? as usize;
                let count = reader.u64()?;
                if node >= node_count {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot} reports sends for out-of-range node {node}"
                    )));
                }
                metrics.record_sends(node, count);
            }
            let edge_entries = reader.u32()?;
            for _ in 0..edge_entries {
                let edge = reader.u64()? as usize;
                let count = reader.u64()?;
                let bytes = reader.u64()?;
                if edge >= ledger.edge_slots() {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot} reports traffic on out-of-range edge {edge}"
                    )));
                }
                ledger.record_bulk(edge, count, bytes);
            }
            ledger.record_dropped_bulk(crate::metrics::FaultCause::Random, reader.u64()?);
            ledger.record_dropped_bulk(crate::metrics::FaultCause::LinkCut, reader.u64()?);
            ledger.record_dropped_bulk(crate::metrics::FaultCause::Crash, reader.u64()?);
            ledger.record_duplicated_bulk(reader.u64()?);
            if reader.pos != stats_end {
                return Err(RuntimeError::transport(format!(
                    "frame from rank {slot}: stats section is {stats_len} bytes but parsing \
                     consumed {}",
                    reader.pos - (stats_end - stats_len)
                )));
            }

            // Churn section: verify the peer applied the identical topology
            // update this round (every rank resolves the same plan, so any
            // difference means the ranks are running on divergent graphs).
            if churn_count != churn.len() {
                return Err(RuntimeError::transport(format!(
                    "frame from rank {slot} reports {churn_count} churn event(s) this round, \
                     this rank applied {}: churn plans have diverged",
                    churn.len()
                )));
            }
            for (index, expected) in churn.iter().enumerate() {
                let bytes = reader.take(crate::churn::ChurnEvent::WIRE_BYTES)?;
                let event = crate::churn::ChurnEvent::decode(bytes).map_err(|e| {
                    RuntimeError::transport(format!(
                        "frame from rank {slot}: churn event {index} failed to decode: {e}"
                    ))
                })?;
                if event != *expected {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot}: churn event {index} is {event:?}, this rank \
                         applied {expected:?}: churn plans have diverged"
                    )));
                }
            }

            // Message records, already in canonical (node, send) order.
            let peer_range = rank_range(slot, self.world, node_count);
            for _ in 0..msg_count {
                let edge = EdgeId::new(reader.u64()?);
                let sender = NodeId::new(reader.u32()?);
                let receiver = NodeId::new(reader.u32()?);
                let payload_len = reader.u32()? as usize;
                let payload_bytes = reader.take(payload_len)?;
                if !peer_range.contains(&sender.index()) {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot} carries a message from node {sender}, \
                         which that rank does not own"
                    )));
                }
                if !owned.contains(&receiver.index()) {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot} addresses node {receiver}, which rank {} \
                         does not own",
                        self.rank
                    )));
                }
                let payload = M::decode(payload_bytes).map_err(|e| {
                    RuntimeError::transport(format!(
                        "frame from rank {slot}: payload on edge {edge} failed to decode: {e}"
                    ))
                })?;
                mailboxes[receiver.index()].push(Envelope {
                    edge,
                    from: sender,
                    payload,
                });
            }
            if reader.pos != reader.buf.len() {
                return Err(RuntimeError::transport(format!(
                    "frame from rank {slot} has {} trailing bytes",
                    reader.buf.len() - reader.pos
                )));
            }
        }

        self.prev_faults = ledger.fault_totals();
        Ok(BarrierOutcome {
            delivered,
            remote_halted,
        })
    }

    fn supports_tracing(&self) -> bool {
        false
    }

    fn owned_range(&self, node_count: usize) -> Range<usize> {
        rank_range(self.rank, self.world, node_count)
    }
}
