//! Multi-process execution over TCP: each process owns a contiguous node
//! range and the round barrier exchanges one length-prefixed binary frame
//! per peer per round.
//!
//! # Frame protocol
//!
//! All integers are little-endian. Per barrier, every rank sends every peer
//! exactly one frame (even when it has no messages for that peer — the
//! frame *is* the barrier):
//!
//! ```text
//! [u32 body_len]                          // bytes after this field
//! [u32 round] [u32 sender_rank]           // lockstep check
//! [u64 sent_total]                        // sender's post-fault outbox total
//! [u32 halted] [u32 msg_count] [u32 stats_len] [u32 churn_count]
//! <stats section, stats_len bytes>        // identical in every peer frame
//! <churn_count churn events, 20 bytes each>
//! <msg_count message records>
//! message record := [u64 edge] [u32 sender] [u32 receiver]
//!                   [u32 payload_len] <payload bytes>
//! ```
//!
//! The stats section is what makes every rank's [`MessageLedger`] and
//! [`ExecutionMetrics`] **globally identical** (the cross-backend identity
//! contract of `docs/TRANSPORT.md`): each rank records its own sends
//! per-message at the barrier, broadcasts per-node send counts, per-edge
//! `(count, bytes)` aggregates and this round's fault deltas, and applies
//! every peer's stats through the order-independent bulk recorders:
//!
//! ```text
//! stats := [u32 node_entries] ([u32 node] [u64 count])*
//!          [u32 edge_entries] ([u64 edge] [u64 count] [u64 bytes])*
//!          [u64 dropped_random] [u64 dropped_link_cut]
//!          [u64 dropped_crash]  [u64 duplicated]
//! ```
//!
//! The churn section carries the [`ChurnEvent`](crate::churn::ChurnEvent)s
//! the sending rank applied at the top of this round, in canonical order
//! and in their [`WireCodec`] encoding. Every rank resolves the same
//! [`ChurnPlan`](crate::churn::ChurnPlan) locally, so the section is a
//! *verification* channel, not an information channel: the receiver decodes
//! each event and checks it against the event it applied itself — any
//! difference means the ranks' topologies diverged, and the barrier fails
//! as desynchronized rather than silently running on different graphs.
//!
//! Mailboxes are filled in ascending rank-slot order (a rank drains its own
//! pending messages at its own slot); because ranks own ascending contiguous
//! node ranges and every frame lists messages in canonical (node, send)
//! order, this reproduces exactly the mailbox order of the serial in-process
//! barrier.
//!
//! `sent_total` sums to the network-wide send count, so
//! [`run_until_quiet`](crate::engine::Network::run_until_quiet) stays in
//! lockstep across ranks; `halted` counts let every rank agree on global
//! termination for [`run_until_halt`](crate::engine::Network::run_until_halt).
//!
//! # Connection setup
//!
//! Rank `r` listens on `peers[r]`, actively connects to every rank below it
//! (capped exponential backoff with deterministic seeded jitter, retrying
//! until `connect_timeout`), and accepts one connection from every rank
//! above it. Both sides exchange a 16-byte handshake
//! (`magic, version, world, rank`) before any frame moves. All sockets run
//! with `TCP_NODELAY`; every setup failure surfaces as
//! [`RuntimeError::Transport`] naming the rank, peer address, attempt count
//! and elapsed time.
//!
//! # Failure semantics and recovery
//!
//! Established sockets are *supervised*: reads poll in short slices and
//! accumulate elapsed time against `io_timeout`. A peer that stalls but
//! stays within the deadline is **`PeerSlow`** — the barrier silently keeps
//! waiting. A closed connection (EOF/reset), a write failure, or a stall
//! past `io_timeout` declares the peer **`PeerDead`**, and the configured
//! [`RecoveryPolicy`] decides what happens next:
//!
//! * [`RecoveryPolicy::FailFast`] (default) — the barrier aborts with a
//!   precise [`RuntimeError::Transport`].
//! * [`RecoveryPolicy::Retry`] — the barrier blocks on the retained
//!   listener and waits for the dead rank to relaunch from its checkpoint
//!   and rejoin via [`TcpTransport::resume_from`]. The rejoin handshake
//!   ([`RejoinHello`]) is checkpoint-anchored: the hello carries the
//!   resume round, and a survivor at barrier round `r` only admits a peer
//!   resuming at round `r - 1` (anything else is rejected as
//!   desynchronized). On admission the survivor re-sends its current
//!   round's frame, so the rejoined rank re-enters the mesh at the next
//!   barrier with nothing lost.
//! * [`RecoveryPolicy::DegradeToSurvivors`] — the dead rank's nodes are
//!   mapped onto fail-stop crash semantics: counted as remotely halted so
//!   termination detection keeps working, their traffic gone.
//!
//! `docs/RECOVERY.md` specifies the rejoin handshake, the bit-identity
//! contract of checkpoint-based recovery, and the caveats of degraded
//! continuation.
//!
//! The backend does not support [`TraceMode::Full`](crate::trace::TraceMode)
//! (canonical-order trace events cannot be reconstructed from per-peer
//! frames without shipping the full event stream);
//! [`Network::with_transport`](crate::engine::Network::with_transport)
//! rejects traced configs up front.
//!
//! [`MessageLedger`]: crate::metrics::MessageLedger
//! [`ExecutionMetrics`]: crate::metrics::ExecutionMetrics

use super::codec::{CodecError, WireCodec};
use super::{BarrierOutcome, RecoveryPolicy, RoundBarrier, Transport};
use crate::error::{RuntimeError, RuntimeResult};
use crate::metrics::FaultTotals;
use crate::node::{Envelope, Outgoing};
use freelunch_graph::{EdgeId, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Handshake magic: `"FLTP"` (freelunch transport).
const MAGIC: u32 = 0x464C_5450;
/// Frame protocol version; bumped on any wire-format change (v2 added the
/// churn-event section).
const VERSION: u32 = 2;
/// Rejoin-handshake magic: `"FLRJ"` (freelunch rejoin), first bytes of a
/// [`RejoinHello`] frame.
const REJOIN_MAGIC: [u8; 4] = *b"FLRJ";
/// Rejoin-handshake version; bumped on any [`RejoinHello`] layout change.
const REJOIN_VERSION: u8 = 1;
/// Rejoin-ack status word: the survivor admits the rejoining rank.
const REJOIN_OK: u32 = 1;
/// Rejoin-ack status word: the rejoin was rejected (desynchronized rounds).
const REJOIN_REJECT: u32 = 0;
/// Upper bound on a frame body, to reject absurd lengths from a corrupt or
/// desynchronized stream before allocating.
const MAX_BODY: u32 = 1 << 30;
/// Fixed part of the frame body: round, sender_rank, sent_total, halted,
/// msg_count, stats_len, churn_count.
const BODY_FIXED: usize = 4 + 4 + 8 + 4 + 4 + 4 + 4;
/// Liveness poll slice: socket reads time out in slices this long and
/// accumulate elapsed time against `io_timeout`, so a dead peer is detected
/// within one slice of the deadline instead of hanging a full blocking read.
const POLL_SLICE: Duration = Duration::from_millis(50);

/// Configuration of a [`TcpTransport`] process group.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This process's rank in `0..peers.len()`.
    pub rank: usize,
    /// One listen address per rank, identical on every process; rank `r`
    /// listens on `peers[r]`. `peers.len()` is the world size.
    pub peers: Vec<SocketAddr>,
    /// Deadline for the whole connection setup (active connects retry until
    /// it expires; pending accepts abort when it does).
    pub connect_timeout: Duration,
    /// Liveness deadline on established sockets. A peer that stalls longer
    /// than this at a barrier is declared dead (`PeerDead`); shorter stalls
    /// are `PeerSlow` and waited out. What happens to a dead peer is
    /// decided by [`TcpConfig::recovery`].
    pub io_timeout: Duration,
    /// Reaction to a peer declared dead at the barrier (default:
    /// [`RecoveryPolicy::FailFast`], the pre-recovery behavior).
    pub recovery: RecoveryPolicy,
    /// First connect-retry backoff delay; each failed attempt doubles it up
    /// to [`TcpConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on a single connect-retry backoff delay.
    pub backoff_cap: Duration,
    /// Seed of the deterministic backoff jitter (each attempt draws its
    /// jitter from a splitmix64 stream keyed by this seed and the attempt
    /// number, so retry timing is reproducible for a given config).
    pub backoff_seed: u64,
}

impl TcpConfig {
    /// A config with default timeouts (10 s connect, 30 s liveness), the
    /// fail-fast recovery policy, and 10 ms → 500 ms connect backoff.
    pub fn new(rank: usize, peers: Vec<SocketAddr>) -> Self {
        TcpConfig {
            rank,
            peers,
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
            recovery: RecoveryPolicy::FailFast,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            backoff_seed: 0,
        }
    }

    /// Sets the [`RecoveryPolicy`] applied when a peer is declared dead.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the connect-retry backoff parameters (first delay, cap, jitter
    /// seed).
    pub fn with_backoff(mut self, base: Duration, cap: Duration, seed: u64) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self.backoff_seed = seed;
        self
    }
}

/// The checkpoint-anchored rejoin handshake frame (24 bytes on the wire).
///
/// A rank relaunched from a checkpoint dials every survivor's listener and
/// opens with this frame: `"FLRJ"` magic, a version byte, the world size,
/// its rank, and the round its checkpoint resumes from. A survivor blocked
/// at barrier round `r` under [`RecoveryPolicy::Retry`] admits the peer
/// only if `resume_round + 1 == r` — a stale or future checkpoint is
/// rejected as desynchronized with a precise error on both sides (see
/// `docs/RECOVERY.md`).
///
/// ```text
/// [0..4]   magic "FLRJ"
/// [4]      version (1)
/// [5..8]   zero padding
/// [8..12]  u32 world
/// [12..16] u32 rank
/// [16..20] u32 resume_round
/// [20..24] zero padding
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinHello {
    /// World size the rejoining rank was configured with (must match the
    /// survivor's).
    pub world: u32,
    /// Rank of the rejoining process (must be the rank the survivor
    /// declared dead).
    pub rank: u32,
    /// Round the rejoining rank's checkpoint resumes from; its next barrier
    /// is `resume_round + 1`.
    pub resume_round: u32,
}

impl RejoinHello {
    /// Exact encoded size of a rejoin hello.
    pub const WIRE_BYTES: usize = 24;
}

impl WireCodec for RejoinHello {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&REJOIN_MAGIC);
        buf.push(REJOIN_VERSION);
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&self.world.to_le_bytes());
        buf.extend_from_slice(&self.rank.to_le_bytes());
        buf.extend_from_slice(&self.resume_round.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < Self::WIRE_BYTES {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_BYTES,
                got: bytes.len(),
            });
        }
        if bytes.len() > Self::WIRE_BYTES {
            return Err(CodecError::Oversized {
                expected: Self::WIRE_BYTES,
                got: bytes.len(),
            });
        }
        if bytes[..4] != REJOIN_MAGIC {
            let tag = bytes[..4]
                .iter()
                .zip(REJOIN_MAGIC.iter())
                .find(|(got, want)| got != want)
                .map(|(got, _)| *got)
                .unwrap_or(bytes[0]);
            return Err(CodecError::InvalidTag { tag });
        }
        if bytes[4] != REJOIN_VERSION {
            return Err(CodecError::InvalidTag { tag: bytes[4] });
        }
        if bytes[5..8] != [0u8; 3] || bytes[20..24] != [0u8; 4] {
            return Err(CodecError::InvalidPadding);
        }
        let word =
            |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        Ok(RejoinHello {
            world: word(8),
            rank: word(12),
            resume_round: word(16),
        })
    }
}

/// The TCP delivery backend (the module docs above describe the protocol).
pub struct TcpTransport<M> {
    rank: usize,
    world: usize,
    /// The full config, retained for peer addresses, timeouts, the recovery
    /// policy and the backoff parameters.
    config: TcpConfig,
    /// This rank's listener, retained after setup so a dead peer can rejoin
    /// the mesh through it (kept non-blocking).
    listener: TcpListener,
    /// Established streams, indexed by peer rank (`None` at the own slot
    /// and at slots whose peer is dead or awaiting rejoin).
    streams: Vec<Option<TcpStream>>,
    /// Per-peer message-record bytes accumulated while draining outboxes.
    frame_bufs: Vec<Vec<u8>>,
    /// Per-peer record counts matching `frame_bufs`.
    frame_counts: Vec<u32>,
    /// Per-peer fully assembled frames of the current round, kept so a
    /// rejoined peer can be re-sent the frame it missed.
    last_frames: Vec<Vec<u8>>,
    /// Incoming frame body buffer, reused across rounds.
    read_buf: Vec<u8>,
    /// Payload encoding scratch.
    payload_buf: Vec<u8>,
    /// The shared stats section of this round's frames.
    stats_buf: Vec<u8>,
    /// The encoded churn-event section of this round's frames (identical
    /// in every peer frame, like the stats).
    churn_buf: Vec<u8>,
    /// Messages addressed to locally owned receivers, held until this
    /// rank's slot in the delivery order comes up.
    local_pending: Vec<Outgoing<M>>,
    /// Per-edge `(count, bytes)` aggregates of this round's own sends
    /// (`BTreeMap` so the stats section lists edges in ascending order).
    edge_stats: BTreeMap<u64, (u64, u64)>,
    /// Ledger fault totals as of the previous barrier, for delta encoding.
    prev_faults: FaultTotals,
    /// Peers permanently declared dead under
    /// [`RecoveryPolicy::DegradeToSurvivors`].
    dead: Vec<bool>,
    /// Peers whose death was detected during this barrier's write phase and
    /// whose rejoin is still pending (resolved at their read slot).
    rejoin_pending: Vec<bool>,
    /// Cumulative count of peers re-admitted through the rejoin handshake.
    recovered_total: u64,
    /// Cumulative count of peers degraded to survivors.
    lost_total: u64,
}

impl<M> fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .field("recovery", &self.config.recovery)
            .finish_non_exhaustive()
    }
}

fn transport_io(context: &str, err: std::io::Error) -> RuntimeError {
    RuntimeError::transport(format!("{context}: {err}"))
}

/// Evidence that a peer is dead, carried from the I/O layer to the
/// [`RecoveryPolicy`] dispatch. A stall still within the liveness deadline
/// is `PeerSlow` and never produces one of these — the read loop simply
/// keeps polling.
struct PeerDeath {
    peer: usize,
    /// Time spent waiting before the peer was declared dead (zero when the
    /// death was immediate, e.g. a reset connection on write).
    elapsed: Duration,
    /// Liveness polls performed before declaring death.
    polls: u32,
    cause: String,
}

impl PeerDeath {
    fn into_error(self, rank: usize, addr: &SocketAddr) -> RuntimeError {
        if self.polls > 0 {
            RuntimeError::transport(format!(
                "rank {rank}: peer rank {} at {addr} is dead (PeerDead) after {:?} and {} \
                 liveness poll(s): {}",
                self.peer, self.elapsed, self.polls, self.cause
            ))
        } else {
            RuntimeError::transport(format!(
                "rank {rank}: peer rank {} at {addr} is dead (PeerDead): {}",
                self.peer, self.cause
            ))
        }
    }
}

/// Why a frame read failed: the peer died (subject to the recovery policy)
/// or the stream carried a protocol violation (always fatal).
enum ReadFailure {
    Dead(PeerDeath),
    Fatal(RuntimeError),
}

/// Reads exactly `buf.len()` bytes, polling in [`POLL_SLICE`] slices and
/// accumulating elapsed time against `deadline_len`. Partial progress is
/// kept across slices, so a slow peer (`PeerSlow`) is waited out; EOF, a
/// reset, or a stall past the deadline declares the peer dead.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline_len: Duration,
    peer: usize,
    context: &str,
) -> Result<(), PeerDeath> {
    let start = Instant::now();
    let mut filled = 0usize;
    let mut polls = 0u32;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(PeerDeath {
                    peer,
                    elapsed: start.elapsed(),
                    polls,
                    cause: format!("{context}: connection closed (EOF)"),
                })
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                polls += 1;
                if start.elapsed() >= deadline_len {
                    return Err(PeerDeath {
                        peer,
                        elapsed: start.elapsed(),
                        polls,
                        cause: format!(
                            "{context}: liveness deadline {deadline_len:?} exceeded \
                             (PeerSlow escalated to PeerDead)"
                        ),
                    });
                }
            }
            Err(err) => {
                return Err(PeerDeath {
                    peer,
                    elapsed: start.elapsed(),
                    polls,
                    cause: format!("{context}: {err}"),
                })
            }
        }
    }
    Ok(())
}

/// The poll-slice read timeout installed on established sockets.
fn poll_slice(io_timeout: Duration) -> Duration {
    POLL_SLICE.min(io_timeout).max(Duration::from_millis(1))
}

/// Delay before connect-retry `attempt` (1-based): capped exponential
/// growth from `backoff_base`, with the upper half of each window drawn
/// from a splitmix64 stream keyed by `(backoff_seed, attempt)` — capped,
/// jittered, and fully deterministic for a given config.
fn backoff_delay(config: &TcpConfig, attempt: u32) -> Duration {
    let base = (config.backoff_base.as_nanos() as u64).max(1);
    let cap = (config.backoff_cap.as_nanos() as u64).max(base);
    let mut window = base;
    for _ in 1..attempt {
        window = window.saturating_mul(2).min(cap);
        if window == cap {
            break;
        }
    }
    let half = window / 2;
    let jitter = crate::fault::splitmix64(
        config
            .backoff_seed
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(attempt),
    ) % (half + 1);
    Duration::from_nanos(half + jitter)
}

/// Dials `config.peers[peer]` with capped exponential backoff and seeded
/// jitter, retrying until `deadline`. The deadline is checked *before*
/// every sleep, so a nearly expired budget can never overshoot by a full
/// retry interval. The error names the rank, peer address, attempt count
/// and elapsed time.
fn dial_with_backoff(
    config: &TcpConfig,
    peer: usize,
    deadline: Instant,
    purpose: &str,
) -> RuntimeResult<TcpStream> {
    let started = Instant::now();
    let mut attempt: u32 = 0;
    loop {
        match TcpStream::connect_timeout(
            &config.peers[peer],
            Duration::from_millis(200).min(config.connect_timeout),
        ) {
            Ok(stream) => return Ok(stream),
            Err(err) => {
                attempt += 1;
                let delay = backoff_delay(config, attempt);
                let now = Instant::now();
                if now >= deadline || now + delay > deadline {
                    return Err(RuntimeError::transport(format!(
                        "rank {}: {purpose} rank {peer} at {} failed after {attempt} \
                         attempt(s) over {:?} (connect_timeout {:?}): {err}",
                        config.rank,
                        config.peers[peer],
                        started.elapsed(),
                        config.connect_timeout
                    )));
                }
                std::thread::sleep(delay);
            }
        }
    }
}

/// Installs the supervised-socket options: `TCP_NODELAY`, poll-slice read
/// timeout, `io_timeout` write timeout.
fn configure_stream(stream: &TcpStream, config: &TcpConfig) -> RuntimeResult<()> {
    stream
        .set_nodelay(true)
        .map_err(|e| transport_io("set_nodelay", e))?;
    stream
        .set_read_timeout(Some(poll_slice(config.io_timeout)))
        .map_err(|e| transport_io("set_read_timeout", e))?;
    stream
        .set_write_timeout(Some(config.io_timeout))
        .map_err(|e| transport_io("set_write_timeout", e))
}

fn write_handshake(stream: &mut TcpStream, world: usize, rank: usize) -> RuntimeResult<()> {
    let mut hs = [0u8; 16];
    hs[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    hs[4..8].copy_from_slice(&VERSION.to_le_bytes());
    hs[8..12].copy_from_slice(&(world as u32).to_le_bytes());
    hs[12..16].copy_from_slice(&(rank as u32).to_le_bytes());
    stream
        .write_all(&hs)
        .map_err(|e| transport_io("handshake write", e))
}

fn read_handshake(
    stream: &mut TcpStream,
    world: usize,
    deadline_len: Duration,
    rank: usize,
) -> RuntimeResult<usize> {
    let mut hs = [0u8; 16];
    read_exact_deadline(stream, &mut hs, deadline_len, usize::MAX, "handshake read").map_err(
        |death| {
            RuntimeError::transport(format!(
                "rank {rank}: handshake read failed after {:?} and {} poll(s): {}",
                death.elapsed, death.polls, death.cause
            ))
        },
    )?;
    let word = |i: usize| u32::from_le_bytes([hs[i], hs[i + 1], hs[i + 2], hs[i + 3]]);
    if word(0) != MAGIC {
        return Err(RuntimeError::transport(format!(
            "handshake: bad magic {:#010x} (not a freelunch transport peer?)",
            word(0)
        )));
    }
    if word(4) != VERSION {
        return Err(RuntimeError::transport(format!(
            "handshake: protocol version mismatch: peer speaks v{}, this build speaks v{VERSION}",
            word(4)
        )));
    }
    if word(8) as usize != world {
        return Err(RuntimeError::transport(format!(
            "handshake: world-size mismatch: peer configured for {} ranks, this process for {world}",
            word(8)
        )));
    }
    Ok(word(12) as usize)
}

/// Writes the 8-byte rejoin ack: `[u32 status] [u32 barrier_round]`.
fn write_rejoin_ack(stream: &mut TcpStream, status: u32, round: u32) -> std::io::Result<()> {
    let mut ack = [0u8; 8];
    ack[0..4].copy_from_slice(&status.to_le_bytes());
    ack[4..8].copy_from_slice(&round.to_le_bytes());
    stream.write_all(&ack)?;
    stream.flush()
}

impl<M> TcpTransport<M> {
    /// Binds a listener on `config.peers[config.rank]` and establishes the
    /// full peer mesh. This is the constructor for genuinely separate
    /// processes (see `examples/tcp_transport.rs`).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Transport`] on an invalid config, bind failure, or
    /// any peer not completing its handshake before `connect_timeout`.
    pub fn connect(config: &TcpConfig) -> RuntimeResult<Self> {
        if config.rank >= config.peers.len() {
            return Err(RuntimeError::transport(format!(
                "rank {} out of range for a {}-rank world",
                config.rank,
                config.peers.len()
            )));
        }
        let listener = TcpListener::bind(config.peers[config.rank])
            .map_err(|e| transport_io("bind listener", e))?;
        TcpTransport::with_listener(listener, config)
    }

    /// Establishes the peer mesh over an already-bound listener. Tests bind
    /// every rank's listener on `127.0.0.1:0` *first*, collect the actual
    /// addresses into `config.peers`, and only then connect — which makes
    /// the rendezvous free of port races.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Transport`] on an invalid config or any peer not
    /// completing its handshake before `connect_timeout`.
    pub fn with_listener(listener: TcpListener, config: &TcpConfig) -> RuntimeResult<Self> {
        let world = config.peers.len();
        let rank = config.rank;
        if rank >= world {
            return Err(RuntimeError::transport(format!(
                "rank {rank} out of range for a {world}-rank world"
            )));
        }
        let setup_started = Instant::now();
        let deadline = setup_started + config.connect_timeout;
        let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();

        // Actively connect to every lower rank (their listeners may still be
        // coming up, so retry with backoff until the deadline).
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let mut stream = dial_with_backoff(config, peer, deadline, "connect to")?;
            configure_stream(&stream, config)?;
            write_handshake(&mut stream, world, rank)?;
            let handshake_window = config
                .io_timeout
                .max(deadline.saturating_duration_since(Instant::now()));
            let peer_rank = read_handshake(&mut stream, world, handshake_window, rank)?;
            if peer_rank != peer {
                return Err(RuntimeError::transport(format!(
                    "connected to {} expecting rank {peer}, but it identifies as rank {peer_rank}",
                    config.peers[peer]
                )));
            }
            *slot = Some(stream);
        }

        // Accept one connection from every higher rank.
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_io("listener set_nonblocking", e))?;
        let mut expected = world - rank - 1;
        let mut accept_polls: u32 = 0;
        while expected > 0 {
            match listener.accept() {
                Ok((mut stream, addr)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| transport_io("stream set_blocking", e))?;
                    configure_stream(&stream, config)?;
                    let handshake_window = config
                        .io_timeout
                        .max(deadline.saturating_duration_since(Instant::now()));
                    let peer_rank = read_handshake(&mut stream, world, handshake_window, rank)?;
                    if peer_rank <= rank || peer_rank >= world {
                        return Err(RuntimeError::transport(format!(
                            "accepted {addr} identifying as rank {peer_rank}, which must not \
                             connect to rank {rank}"
                        )));
                    }
                    if streams[peer_rank].is_some() {
                        return Err(RuntimeError::transport(format!(
                            "rank {peer_rank} connected twice"
                        )));
                    }
                    write_handshake(&mut stream, world, rank)?;
                    streams[peer_rank] = Some(stream);
                    expected -= 1;
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => {
                    accept_polls += 1;
                    if Instant::now() >= deadline {
                        return Err(RuntimeError::transport(format!(
                            "rank {rank} at {}: timed out after {:?} and {accept_polls} \
                             accept poll(s) waiting for {expected} higher-rank peer(s) to \
                             connect (connect_timeout {:?})",
                            config.peers[rank],
                            setup_started.elapsed(),
                            config.connect_timeout
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(err) => return Err(transport_io("accept", err)),
            }
        }

        Ok(TcpTransport::assemble(
            listener,
            config.clone(),
            streams,
            FaultTotals::default(),
        ))
    }

    /// Reconnects a rank relaunched from a checkpoint to the surviving
    /// mesh: binds this rank's listener, dials every survivor with the
    /// [`RejoinHello`] handshake (carrying `resume_round`, the round the
    /// restored [`Network`](crate::engine::Network) reports as
    /// [`current_round`](crate::engine::Network::current_round)), and waits
    /// for each survivor's ack. Survivors blocked at barrier round
    /// `resume_round + 1` under [`RecoveryPolicy::Retry`] admit the rank
    /// and re-send their frames; the next [`run_round`] call then re-enters
    /// the mesh in lockstep.
    ///
    /// `fault_baseline` must be the restored ledger's
    /// [`fault_totals`](crate::metrics::MessageLedger::fault_totals)
    /// (available as [`NetworkCheckpoint::fault_totals`]) so the next
    /// frame's fault deltas pick up exactly where the checkpoint left off.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Transport`] on an invalid config, bind failure, a
    /// survivor rejecting the rejoin as desynchronized, or any survivor not
    /// acking before `connect_timeout`.
    ///
    /// [`run_round`]: crate::engine::Network::run_round
    /// [`NetworkCheckpoint::fault_totals`]: crate::checkpoint::NetworkCheckpoint::fault_totals
    pub fn resume_from(
        config: &TcpConfig,
        resume_round: u32,
        fault_baseline: FaultTotals,
    ) -> RuntimeResult<Self> {
        let world = config.peers.len();
        let rank = config.rank;
        if rank >= world {
            return Err(RuntimeError::transport(format!(
                "rank {rank} out of range for a {world}-rank world"
            )));
        }
        let listener = TcpListener::bind(config.peers[rank])
            .map_err(|e| transport_io("bind listener for rejoin", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| transport_io("listener set_nonblocking", e))?;
        let deadline = Instant::now() + config.connect_timeout;
        let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
        let hello = RejoinHello {
            world: world as u32,
            rank: rank as u32,
            resume_round,
        };
        let mut hello_buf = Vec::with_capacity(RejoinHello::WIRE_BYTES);
        hello.encode(&mut hello_buf);
        for (peer, slot) in streams.iter_mut().enumerate() {
            if peer == rank {
                continue;
            }
            let mut stream = dial_with_backoff(config, peer, deadline, "rejoin-dial survivor")?;
            configure_stream(&stream, config)?;
            stream
                .write_all(&hello_buf)
                .and_then(|_| stream.flush())
                .map_err(|e| {
                    transport_io(&format!("rank {rank}: rejoin hello to rank {peer}"), e)
                })?;
            // The survivor only acks once its barrier reaches the dead slot,
            // so the ack window is the full connect budget.
            let ack_window = config
                .connect_timeout
                .max(deadline.saturating_duration_since(Instant::now()));
            let mut ack = [0u8; 8];
            read_exact_deadline(&mut stream, &mut ack, ack_window, peer, "rejoin ack")
                .map_err(|death| death.into_error(rank, &config.peers[peer]))?;
            let status = u32::from_le_bytes([ack[0], ack[1], ack[2], ack[3]]);
            let barrier_round = u32::from_le_bytes([ack[4], ack[5], ack[6], ack[7]]);
            if status != REJOIN_OK {
                return Err(RuntimeError::transport(format!(
                    "rank {rank}: rank {peer} rejected the rejoin as desynchronized: its \
                     barrier is at round {barrier_round}, this checkpoint resumes at round \
                     {resume_round} (next barrier {})",
                    resume_round.wrapping_add(1)
                )));
            }
            if barrier_round != resume_round.wrapping_add(1) {
                return Err(RuntimeError::transport(format!(
                    "rank {rank}: rank {peer} acked the rejoin but reports barrier round \
                     {barrier_round}, expected {}",
                    resume_round.wrapping_add(1)
                )));
            }
            *slot = Some(stream);
        }
        Ok(TcpTransport::assemble(
            listener,
            config.clone(),
            streams,
            fault_baseline,
        ))
    }

    fn assemble(
        listener: TcpListener,
        config: TcpConfig,
        streams: Vec<Option<TcpStream>>,
        prev_faults: FaultTotals,
    ) -> Self {
        let world = config.peers.len();
        TcpTransport {
            rank: config.rank,
            world,
            listener,
            streams,
            frame_bufs: (0..world).map(|_| Vec::new()).collect(),
            frame_counts: vec![0; world],
            last_frames: (0..world).map(|_| Vec::new()).collect(),
            read_buf: Vec::new(),
            payload_buf: Vec::new(),
            stats_buf: Vec::new(),
            churn_buf: Vec::new(),
            local_pending: Vec::new(),
            edge_stats: BTreeMap::new(),
            prev_faults,
            dead: vec![false; world],
            rejoin_pending: vec![false; world],
            recovered_total: 0,
            lost_total: 0,
            config,
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the process group.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// The recovery policy this transport applies to dead peers.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.config.recovery
    }

    /// Cumulative number of peers re-admitted through the rejoin handshake
    /// over this transport's lifetime.
    pub fn recovered_peers_total(&self) -> u64 {
        self.recovered_total
    }

    /// Cumulative number of peers degraded to survivors over this
    /// transport's lifetime.
    pub fn lost_peers_total(&self) -> u64 {
        self.lost_total
    }

    /// Whether `rank` has been permanently declared dead under
    /// [`RecoveryPolicy::DegradeToSurvivors`].
    pub fn is_peer_dead(&self, rank: usize) -> bool {
        self.dead.get(rank).copied().unwrap_or(false)
    }

    /// Blocks on the retained listener until the dead `slot` rank rejoins
    /// with a round-consistent [`RejoinHello`], acks it, installs the fresh
    /// stream, and re-sends this round's frame. Waits up to
    /// `attempts × io_timeout`.
    fn recover_peer(&mut self, slot: usize, round: u32, attempts: u32) -> RuntimeResult<()> {
        self.streams[slot] = None;
        self.rejoin_pending[slot] = false;
        let started = Instant::now();
        let deadline = started + self.config.io_timeout * attempts.max(1);
        let mut accept_polls: u32 = 0;
        let (mut stream, addr) = loop {
            match self.listener.accept() {
                Ok(pair) => break pair,
                Err(err) if err.kind() == ErrorKind::WouldBlock => {
                    accept_polls += 1;
                    if Instant::now() >= deadline {
                        return Err(RuntimeError::transport(format!(
                            "rank {}: waited {:?} ({accept_polls} poll(s)) at the round-{round} \
                             barrier for dead rank {slot} at {} to rejoin from its checkpoint; \
                             giving up (RecoveryPolicy::Retry {{ attempts: {attempts} }} \
                             exhausted)",
                            self.rank,
                            started.elapsed(),
                            self.config.peers[slot]
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(err) => return Err(transport_io("rejoin accept", err)),
            }
        };
        stream
            .set_nonblocking(false)
            .map_err(|e| transport_io("stream set_blocking", e))?;
        configure_stream(&stream, &self.config)?;
        let mut hello_bytes = [0u8; RejoinHello::WIRE_BYTES];
        read_exact_deadline(
            &mut stream,
            &mut hello_bytes,
            self.config.io_timeout,
            slot,
            "rejoin hello",
        )
        .map_err(|death| death.into_error(self.rank, &addr))?;
        let hello = RejoinHello::decode(&hello_bytes).map_err(|e| {
            RuntimeError::transport(format!(
                "rank {}: rejoin hello from {addr} failed to decode: {e}",
                self.rank
            ))
        })?;
        if hello.world as usize != self.world {
            let _ = write_rejoin_ack(&mut stream, REJOIN_REJECT, round);
            return Err(RuntimeError::transport(format!(
                "rank {}: rejoin hello from {addr} is configured for a {}-rank world, this \
                 mesh has {} ranks",
                self.rank, hello.world, self.world
            )));
        }
        if hello.rank as usize != slot {
            let _ = write_rejoin_ack(&mut stream, REJOIN_REJECT, round);
            return Err(RuntimeError::transport(format!(
                "rank {}: expected dead rank {slot} to rejoin, but {addr} identifies as \
                 rank {}",
                self.rank, hello.rank
            )));
        }
        if hello.resume_round.wrapping_add(1) != round {
            let _ = write_rejoin_ack(&mut stream, REJOIN_REJECT, round);
            return Err(RuntimeError::transport(format!(
                "rank {}: rejoin from rank {slot} is desynchronized: its checkpoint resumes \
                 at round {} (next barrier {}), but this barrier is at round {round}; \
                 relaunch it from the checkpoint of round {}",
                self.rank,
                hello.resume_round,
                hello.resume_round.wrapping_add(1),
                round.saturating_sub(1)
            )));
        }
        write_rejoin_ack(&mut stream, REJOIN_OK, round)
            .map_err(|e| transport_io(&format!("rejoin ack to rank {slot}"), e))?;
        // Whatever this barrier already wrote went to the dead socket and is
        // gone; re-send this round's frame on the fresh connection.
        stream
            .write_all(&self.last_frames[slot])
            .and_then(|_| stream.flush())
            .map_err(|e| transport_io(&format!("re-send frame to rejoined rank {slot}"), e))?;
        self.streams[slot] = Some(stream);
        Ok(())
    }
}

/// Sequential little-endian reader over a received frame body.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    peer: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, len: usize) -> RuntimeResult<&'a [u8]> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(RuntimeError::transport(format!(
                "frame from rank {} truncated: wanted {len} bytes at offset {}, body is {} bytes",
                self.peer,
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u32(&mut self) -> RuntimeResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> RuntimeResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// The contiguous node range rank `rank` of `world` owns (the same
/// `div_ceil` chunking the sharded execute phase uses).
fn rank_range(rank: usize, world: usize, node_count: usize) -> Range<usize> {
    let chunk = node_count.div_ceil(world);
    let lo = (rank * chunk).min(node_count);
    let hi = (lo + chunk).min(node_count);
    lo..hi
}

impl<M: WireCodec + Clone + fmt::Debug + Send + Sync> TcpTransport<M> {
    /// Drains the local outboxes: records every send in the ledger
    /// (sender-side), stages locally addressed messages, encodes remote
    /// ones into per-peer record buffers, and accumulates the stats
    /// aggregates. Returns the per-node count entries for the stats
    /// section.
    fn stage_local_sends(
        &mut self,
        outboxes: &mut [Vec<Outgoing<M>>],
        ledger: &mut crate::metrics::MessageLedger,
        chunk: usize,
    ) -> RuntimeResult<Vec<(u32, u64)>> {
        let mut node_counts = Vec::new();
        for (node, outbox) in outboxes.iter_mut().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            node_counts.push((node as u32, outbox.len() as u64));
            for outgoing in outbox.drain(..) {
                ledger.record(outgoing.edge.index(), outgoing.bytes);
                let entry = self.edge_stats.entry(outgoing.edge.raw()).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += outgoing.bytes;
                let dest = outgoing.receiver.index() / chunk;
                if dest == self.rank {
                    self.local_pending.push(outgoing);
                    continue;
                }
                self.payload_buf.clear();
                outgoing.payload.encode(&mut self.payload_buf);
                if self.payload_buf.len() as u64 != outgoing.bytes {
                    return Err(RuntimeError::transport(format!(
                        "codec/payload_bytes mismatch on edge {}: encoded {} bytes, \
                         payload_bytes charges {} (see docs/TRANSPORT.md)",
                        outgoing.edge,
                        self.payload_buf.len(),
                        outgoing.bytes
                    )));
                }
                let buf = &mut self.frame_bufs[dest];
                buf.extend_from_slice(&outgoing.edge.raw().to_le_bytes());
                buf.extend_from_slice(&outgoing.sender.raw().to_le_bytes());
                buf.extend_from_slice(&outgoing.receiver.raw().to_le_bytes());
                buf.extend_from_slice(&(self.payload_buf.len() as u32).to_le_bytes());
                buf.extend_from_slice(&self.payload_buf);
                self.frame_counts[dest] += 1;
            }
        }
        Ok(node_counts)
    }

    /// Builds the stats section shared by every peer frame for this round.
    fn build_stats(&mut self, node_counts: &[(u32, u64)], faults: &FaultTotals) {
        self.stats_buf.clear();
        let buf = &mut self.stats_buf;
        buf.extend_from_slice(&(node_counts.len() as u32).to_le_bytes());
        for &(node, count) in node_counts {
            buf.extend_from_slice(&node.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
        buf.extend_from_slice(&(self.edge_stats.len() as u32).to_le_bytes());
        for (&edge, &(count, bytes)) in &self.edge_stats {
            buf.extend_from_slice(&edge.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
            buf.extend_from_slice(&bytes.to_le_bytes());
        }
        let delta = |now: u64, prev: u64| now - prev;
        buf.extend_from_slice(
            &delta(faults.dropped_random, self.prev_faults.dropped_random).to_le_bytes(),
        );
        buf.extend_from_slice(
            &delta(faults.dropped_link_cut, self.prev_faults.dropped_link_cut).to_le_bytes(),
        );
        buf.extend_from_slice(
            &delta(faults.dropped_crash, self.prev_faults.dropped_crash).to_le_bytes(),
        );
        buf.extend_from_slice(&delta(faults.duplicated, self.prev_faults.duplicated).to_le_bytes());
    }

    /// Assembles this round's frame for peer `peer` into
    /// `last_frames[peer]` (retained for rejoin re-sends).
    fn build_frame(
        &mut self,
        peer: usize,
        round: u32,
        sent_total: u64,
        halted: u32,
    ) -> RuntimeResult<()> {
        let body_len =
            BODY_FIXED + self.stats_buf.len() + self.churn_buf.len() + self.frame_bufs[peer].len();
        if body_len as u64 > u64::from(MAX_BODY) {
            return Err(RuntimeError::transport(format!(
                "frame to rank {peer} exceeds the {MAX_BODY}-byte body limit ({body_len} bytes)"
            )));
        }
        let frame = &mut self.last_frames[peer];
        frame.clear();
        frame.extend_from_slice(&(body_len as u32).to_le_bytes());
        frame.extend_from_slice(&round.to_le_bytes());
        frame.extend_from_slice(&(self.rank as u32).to_le_bytes());
        frame.extend_from_slice(&sent_total.to_le_bytes());
        frame.extend_from_slice(&halted.to_le_bytes());
        frame.extend_from_slice(&self.frame_counts[peer].to_le_bytes());
        frame.extend_from_slice(&(self.stats_buf.len() as u32).to_le_bytes());
        let churn_count = self.churn_buf.len() / crate::churn::ChurnEvent::WIRE_BYTES;
        frame.extend_from_slice(&(churn_count as u32).to_le_bytes());
        frame.extend_from_slice(&self.stats_buf);
        frame.extend_from_slice(&self.churn_buf);
        frame.extend_from_slice(&self.frame_bufs[peer]);
        Ok(())
    }

    /// Writes the assembled frame to peer `peer` (one buffered `write_all`).
    /// A failure is peer death, dispatched on the recovery policy.
    fn send_frame(&mut self, peer: usize) -> Result<(), PeerDeath> {
        let stream = match self.streams[peer].as_mut() {
            Some(stream) => stream,
            None => {
                return Err(PeerDeath {
                    peer,
                    elapsed: Duration::ZERO,
                    polls: 0,
                    cause: "no live connection".to_string(),
                })
            }
        };
        stream
            .write_all(&self.last_frames[peer])
            .and_then(|_| stream.flush())
            .map_err(|err| PeerDeath {
                peer,
                elapsed: Duration::ZERO,
                polls: 0,
                cause: format!("write frame: {err}"),
            })
    }

    /// Reads peer `peer`'s frame body into `read_buf`. A dead peer (EOF,
    /// reset, liveness deadline) is reported as [`ReadFailure::Dead`] for
    /// the recovery policy; protocol violations are fatal.
    fn read_frame(&mut self, peer: usize) -> Result<(), ReadFailure> {
        let io_timeout = self.config.io_timeout;
        let stream = match self.streams[peer].as_mut() {
            Some(stream) => stream,
            None => {
                return Err(ReadFailure::Dead(PeerDeath {
                    peer,
                    elapsed: Duration::ZERO,
                    polls: 0,
                    cause: "no live connection".to_string(),
                }))
            }
        };
        let mut len = [0u8; 4];
        read_exact_deadline(stream, &mut len, io_timeout, peer, "read frame length")
            .map_err(ReadFailure::Dead)?;
        let body_len = u32::from_le_bytes(len);
        if body_len > MAX_BODY || (body_len as usize) < BODY_FIXED {
            return Err(ReadFailure::Fatal(RuntimeError::transport(format!(
                "desynchronized stream from rank {peer}: implausible frame body of {body_len} bytes"
            ))));
        }
        self.read_buf.resize(body_len as usize, 0);
        let stream = self.streams[peer].as_mut().expect("stream checked above");
        read_exact_deadline(
            stream,
            &mut self.read_buf,
            io_timeout,
            peer,
            "read frame body",
        )
        .map_err(ReadFailure::Dead)
    }
}

impl<M: WireCodec + Clone + fmt::Debug + Send + Sync> Transport<M> for TcpTransport<M> {
    fn deliver(&mut self, barrier: RoundBarrier<'_, M>) -> RuntimeResult<BarrierOutcome> {
        let RoundBarrier {
            round,
            local_sent,
            halted,
            outboxes,
            mailboxes,
            metrics,
            ledger,
            churn,
            ..
        } = barrier;
        let node_count = mailboxes.len();
        let chunk = node_count.div_ceil(self.world);
        let owned = rank_range(self.rank, self.world, node_count);
        let policy = self.config.recovery;

        for buf in &mut self.frame_bufs {
            buf.clear();
        }
        self.frame_counts.fill(0);
        self.local_pending.clear();
        self.edge_stats.clear();

        let node_counts = self.stage_local_sends(outboxes, ledger, chunk)?;
        // `prev_faults` holds the totals as of the end of the *previous*
        // barrier — i.e. after merging every peer's deltas — so the delta
        // against it covers exactly this rank's own new drops/duplications
        // this round. Snapshotting here instead (before the merge below)
        // would fold the peers' last-round deltas into this rank's next
        // delta and echo them back, double-counting faults forever.
        let fault_totals = ledger.fault_totals();
        self.build_stats(&node_counts, &fault_totals);
        self.churn_buf.clear();
        for event in churn {
            event.encode(&mut self.churn_buf);
        }
        let halted_local = halted[owned.clone()].iter().filter(|&&h| h).count() as u32;

        let mut recovered_peers = 0usize;
        let mut lost_peers = 0usize;

        // Write every peer's frame first (frames buffer in the kernel), then
        // read; no read depends on a peer having read ours. Frames are
        // assembled for every live peer before any write, so a peer that
        // dies mid-barrier can be re-sent its frame after rejoining.
        for peer in 0..self.world {
            if peer != self.rank && !self.dead[peer] {
                self.build_frame(peer, round, local_sent, halted_local)?;
            }
        }
        for peer in 0..self.world {
            if peer == self.rank || self.dead[peer] {
                continue;
            }
            if let Err(death) = self.send_frame(peer) {
                match policy {
                    RecoveryPolicy::FailFast => {
                        return Err(death.into_error(self.rank, &self.config.peers[peer]));
                    }
                    RecoveryPolicy::Retry { .. } => {
                        // Defer: the rejoin (and the frame re-send) happens
                        // at this peer's read slot, preserving delivery
                        // order.
                        self.streams[peer] = None;
                        self.rejoin_pending[peer] = true;
                    }
                    RecoveryPolicy::DegradeToSurvivors => {
                        self.streams[peer] = None;
                        self.dead[peer] = true;
                        lost_peers += 1;
                        self.lost_total += 1;
                    }
                }
            }
        }

        for mailbox in mailboxes.iter_mut() {
            mailbox.clear();
        }

        let mut delivered = local_sent;
        let mut remote_halted = 0usize;
        // Deliver in ascending rank-slot order — that is ascending sender
        // order, which reproduces the canonical serial mailbox order.
        for slot in 0..self.world {
            if slot == self.rank {
                for outgoing in self.local_pending.drain(..) {
                    mailboxes[outgoing.receiver.index()].push(Envelope {
                        edge: outgoing.edge,
                        from: outgoing.sender,
                        payload: outgoing.payload,
                    });
                }
                continue;
            }
            if self.dead[slot] {
                // Degraded rank: fail-stop semantics. All of its nodes are
                // counted as remotely halted so termination detection keeps
                // working without it; its traffic is gone.
                remote_halted += rank_range(slot, self.world, node_count).len();
                continue;
            }
            if self.rejoin_pending[slot] {
                if let RecoveryPolicy::Retry { attempts } = policy {
                    self.recover_peer(slot, round, attempts)?;
                    recovered_peers += 1;
                    self.recovered_total += 1;
                }
            }
            if let Err(failure) = self.read_frame(slot) {
                match failure {
                    ReadFailure::Fatal(err) => return Err(err),
                    ReadFailure::Dead(death) => match policy {
                        RecoveryPolicy::FailFast => {
                            return Err(death.into_error(self.rank, &self.config.peers[slot]));
                        }
                        RecoveryPolicy::Retry { attempts } => {
                            self.recover_peer(slot, round, attempts)?;
                            recovered_peers += 1;
                            self.recovered_total += 1;
                            if let Err(second) = self.read_frame(slot) {
                                return Err(match second {
                                    ReadFailure::Fatal(err) => err,
                                    ReadFailure::Dead(death) => {
                                        death.into_error(self.rank, &self.config.peers[slot])
                                    }
                                });
                            }
                        }
                        RecoveryPolicy::DegradeToSurvivors => {
                            self.streams[slot] = None;
                            self.dead[slot] = true;
                            lost_peers += 1;
                            self.lost_total += 1;
                            remote_halted += rank_range(slot, self.world, node_count).len();
                            continue;
                        }
                    },
                }
            }
            let mut reader = FrameReader {
                buf: &self.read_buf,
                pos: 0,
                peer: slot,
            };
            let peer_round = reader.u32()?;
            let peer_rank = reader.u32()? as usize;
            if peer_round != round || peer_rank != slot {
                return Err(RuntimeError::transport(format!(
                    "desynchronized stream: expected round {round} from rank {slot}, \
                     got round {peer_round} from rank {peer_rank}"
                )));
            }
            delivered += reader.u64()?;
            remote_halted += reader.u32()? as usize;
            let msg_count = reader.u32()?;
            let stats_len = reader.u32()? as usize;
            let churn_count = reader.u32()? as usize;

            // Stats: merge through the order-independent bulk recorders.
            let stats_end = reader.pos + stats_len;
            let node_entries = reader.u32()?;
            for _ in 0..node_entries {
                let node = reader.u32()? as usize;
                let count = reader.u64()?;
                if node >= node_count {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot} reports sends for out-of-range node {node}"
                    )));
                }
                metrics.record_sends(node, count);
            }
            let edge_entries = reader.u32()?;
            for _ in 0..edge_entries {
                let edge = reader.u64()? as usize;
                let count = reader.u64()?;
                let bytes = reader.u64()?;
                if edge >= ledger.edge_slots() {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot} reports traffic on out-of-range edge {edge}"
                    )));
                }
                ledger.record_bulk(edge, count, bytes);
            }
            ledger.record_dropped_bulk(crate::metrics::FaultCause::Random, reader.u64()?);
            ledger.record_dropped_bulk(crate::metrics::FaultCause::LinkCut, reader.u64()?);
            ledger.record_dropped_bulk(crate::metrics::FaultCause::Crash, reader.u64()?);
            ledger.record_duplicated_bulk(reader.u64()?);
            if reader.pos != stats_end {
                return Err(RuntimeError::transport(format!(
                    "frame from rank {slot}: stats section is {stats_len} bytes but parsing \
                     consumed {}",
                    reader.pos - (stats_end - stats_len)
                )));
            }

            // Churn section: verify the peer applied the identical topology
            // update this round (every rank resolves the same plan, so any
            // difference means the ranks are running on divergent graphs).
            if churn_count != churn.len() {
                return Err(RuntimeError::transport(format!(
                    "frame from rank {slot} reports {churn_count} churn event(s) this round, \
                     this rank applied {}: churn plans have diverged",
                    churn.len()
                )));
            }
            for (index, expected) in churn.iter().enumerate() {
                let bytes = reader.take(crate::churn::ChurnEvent::WIRE_BYTES)?;
                let event = crate::churn::ChurnEvent::decode(bytes).map_err(|e| {
                    RuntimeError::transport(format!(
                        "frame from rank {slot}: churn event {index} failed to decode: {e}"
                    ))
                })?;
                if event != *expected {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot}: churn event {index} is {event:?}, this rank \
                         applied {expected:?}: churn plans have diverged"
                    )));
                }
            }

            // Message records, already in canonical (node, send) order.
            let peer_range = rank_range(slot, self.world, node_count);
            for _ in 0..msg_count {
                let edge = EdgeId::new(reader.u64()?);
                let sender = NodeId::new(reader.u32()?);
                let receiver = NodeId::new(reader.u32()?);
                let payload_len = reader.u32()? as usize;
                let payload_bytes = reader.take(payload_len)?;
                if !peer_range.contains(&sender.index()) {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot} carries a message from node {sender}, \
                         which that rank does not own"
                    )));
                }
                if !owned.contains(&receiver.index()) {
                    return Err(RuntimeError::transport(format!(
                        "frame from rank {slot} addresses node {receiver}, which rank {} \
                         does not own",
                        self.rank
                    )));
                }
                let payload = M::decode(payload_bytes).map_err(|e| {
                    RuntimeError::transport(format!(
                        "frame from rank {slot}: payload on edge {edge} failed to decode: {e}"
                    ))
                })?;
                mailboxes[receiver.index()].push(Envelope {
                    edge,
                    from: sender,
                    payload,
                });
            }
            if reader.pos != reader.buf.len() {
                return Err(RuntimeError::transport(format!(
                    "frame from rank {slot} has {} trailing bytes",
                    reader.buf.len() - reader.pos
                )));
            }
        }

        self.prev_faults = ledger.fault_totals();
        Ok(BarrierOutcome {
            delivered,
            remote_halted,
            recovered_peers,
            lost_peers,
        })
    }

    fn supports_tracing(&self) -> bool {
        false
    }

    fn owned_range(&self, node_count: usize) -> Range<usize> {
        rank_range(self.rank, self.world, node_count)
    }
}
