//! Fault-injection walkthrough: the same seeded MIS execution subjected to
//! increasingly hostile (but fully deterministic) adversity.
//!
//! Run with `cargo run --example fault_injection`.

use freelunch::algorithms::{is_maximal_independent_set, LubyMis, MisState};
use freelunch::graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch::graph::{EdgeId, NodeId};
use freelunch::runtime::{FaultPlan, Network, NetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(96, 11), 5.0)?;
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::none()),
        ("drop 20%", FaultPlan::new(7).with_drop_probability(0.2)),
        (
            "crash 3 nodes",
            FaultPlan::new(7)
                .with_crash(NodeId::new(10), 0)
                .with_crash(NodeId::new(40), 0)
                .with_crash(NodeId::new(70), 2),
        ),
        (
            "chaos",
            FaultPlan::new(7)
                .with_drop_probability(0.1)
                .with_duplicate_probability(0.1)
                .with_link_cut(EdgeId::new(5), 1)
                .with_delivery_perturbation(),
        ),
    ];

    println!("Luby MIS on sparse ER (n=96), one network seed, four adversities:\n");
    for (name, plan) in scenarios {
        // Shard count never changes an outcome — faulty or not — so pick
        // any; 2 here to exercise the parallel barrier.
        let config = NetworkConfig::with_seed(5).sharded(2);
        let mut network = Network::with_fault_plan(&graph, config, plan, |_, knowledge| {
            LubyMis::new(knowledge.degree())
        })?;
        let outcome = network.run_until_halt(300);
        let states: Vec<MisState> = network.programs().iter().map(LubyMis::state).collect();
        let in_set = states.iter().filter(|s| **s == MisState::InSet).count();
        let valid = is_maximal_independent_set(&graph, &states);
        let independent = graph.edges().all(|e| {
            !(states[e.u.index()] == MisState::InSet && states[e.v.index()] == MisState::InSet)
        });
        let faults = network.ledger().fault_totals();
        println!(
            "{name:>14}: |MIS|={in_set:2}  valid={valid}  independent={independent}  \
             halted={}  crashed={}  dropped={} (random {}, cut {}, crash {})  duplicated={}",
            outcome.is_ok(),
            network.crashed_count(),
            faults.dropped,
            faults.dropped_random,
            faults.dropped_link_cut,
            faults.dropped_crash,
            faults.duplicated,
        );
    }
    println!(
        "\nEvery line is a pure function of (graph seed, network seed, fault seed):\n\
         rerun the binary and the numbers will not move."
    );
    Ok(())
}
