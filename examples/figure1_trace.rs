//! Reproduce Figure 1 of the paper on a small graph: print, level by level,
//! the panels of procedure `Cluster_j` — query edges, the edge set `F`, the
//! selected centers, the clustering, and the contracted graph `G_{j+1}`.
//!
//! Run with `cargo run --example figure1_trace`.

use freelunch::core::sampler::{ConstantPolicy, Sampler, SamplerParams};
use freelunch::graph::generators::{planted_partition, GeneratorConfig, PlantedPartitionParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small community graph keeps the trace readable.
    let params = PlantedPartitionParams::new(4, 0.5, 0.05)?;
    let graph = planted_partition(&GeneratorConfig::new(48, 9), &params)?;
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let sampler_params = SamplerParams::with_constants(
        2,
        3,
        ConstantPolicy::Practical {
            target_factor: 3.0,
            query_factor: 4.0,
        },
    )?;
    let (outcome, trace) = Sampler::new(sampler_params).run_with_trace(&graph, 4)?;

    for level in &trace.levels {
        println!(
            "\n================ level {} (G_{}) ================",
            level.level, level.level
        );
        println!(
            "(a) level graph: {} nodes, {} edges",
            level.nodes, level.edges
        );
        println!(
            "(b) query edges: {} distinct edges probed",
            level.query_edges.len()
        );
        println!("(c) F edges added: {}", level.f_edges.len());
        println!(
            "(d) centers ({}): {}",
            level.centers.len(),
            level
                .centers
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!("(e) clusters formed: {}", level.clusters.len());
        for (i, cluster) in level.clusters.iter().enumerate().take(6) {
            println!(
                "      C{i}: {{{}}}",
                cluster
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        if level.clusters.len() > 6 {
            println!("      … {} more clusters", level.clusters.len() - 6);
        }
        println!("    unclustered: {}", level.unclustered.len());
        match level.next_level_nodes {
            Some(next) => println!("(f) contracted graph G_{}: {} nodes", level.level + 1, next),
            None => println!("(f) final level — no contraction"),
        }
    }

    println!(
        "\nspanner: {} of {} edges; distributed cost {} rounds / {} messages",
        outcome.spanner_size(),
        graph.edge_count(),
        outcome.cost.rounds,
        outcome.cost.messages
    );
    Ok(())
}
