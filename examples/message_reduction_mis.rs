//! The "free lunch" in action on a real LOCAL algorithm: run Luby's MIS
//! directly on a dense graph, then account what the same computation costs
//! when its information gathering is routed through a `Sampler` spanner.
//!
//! Run with `cargo run --example message_reduction_mis`.

use freelunch::algorithms::{is_maximal_independent_set, LubyMis};
use freelunch::baselines::direct_flooding;
use freelunch::core::reduction::tlocal::t_local_broadcast;
use freelunch::core::sampler::{ConstantPolicy, Sampler, SamplerParams};
use freelunch::graph::generators::{connected_erdos_renyi, GeneratorConfig};
use freelunch::runtime::{Network, NetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = connected_erdos_renyi(&GeneratorConfig::new(300, 11), 0.25)?;
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 1. Direct execution of Luby's MIS: measure its round count t and cost.
    let mut network = Network::new(&graph, NetworkConfig::with_seed(3), |_, knowledge| {
        LubyMis::new(knowledge.degree())
    })?;
    network.run_until_halt(200)?;
    let direct_cost = network.cost();
    let states: Vec<_> = network.programs().iter().map(LubyMis::state).collect();
    assert!(
        is_maximal_independent_set(&graph, &states),
        "direct run must produce a valid MIS"
    );
    let t = u32::try_from(direct_cost.rounds)?;
    println!(
        "direct Luby MIS: t = {t} rounds, {} messages, MIS size {}",
        direct_cost.messages,
        states
            .iter()
            .filter(|s| matches!(s, freelunch::algorithms::MisState::InSet))
            .count()
    );

    // 2. Message-reduced execution: Sampler spanner + t-local broadcast of the
    //    initial knowledge (each node then recomputes its MIS decision
    //    locally, sending nothing further).
    let params = SamplerParams::with_constants(
        2,
        7,
        ConstantPolicy::Practical {
            target_factor: 4.0,
            query_factor: 4.0,
        },
    )?;
    let spanner = Sampler::new(params).run(&graph, 17)?;
    let broadcast = t_local_broadcast(
        &graph,
        spanner.spanner_edges().iter().copied(),
        t,
        params.stretch_bound(),
    )?;
    let simulated = spanner.cost + broadcast.cost;
    println!(
        "simulated execution: spanner {} edges, {} + {} = {} messages, {} rounds",
        spanner.spanner_size(),
        spanner.cost.messages,
        broadcast.cost.messages,
        simulated.messages,
        simulated.rounds
    );

    // 3. The naive alternative the paper improves on: flooding G directly.
    let flooding = direct_flooding(&graph, t)?;
    println!(
        "naive t-round flooding on G: {} messages",
        flooding.broadcast.cost.messages
    );

    println!(
        "message savings vs direct: {:.2}x, vs naive flooding: {:.2}x (round overhead {:.1}x)",
        direct_cost.messages as f64 / simulated.messages as f64,
        flooding.broadcast.cost.messages as f64 / simulated.messages as f64,
        simulated.rounds as f64 / direct_cost.rounds as f64,
    );
    Ok(())
}
