//! Quickstart: build a dense graph, construct a `Sampler` spanner, verify
//! its stretch and compare the construction's message count with the edge
//! count.
//!
//! Run with `cargo run --example quickstart`.

use freelunch::core::sampler::{ConstantPolicy, Sampler, SamplerParams};
use freelunch::graph::generators::{connected_erdos_renyi, GeneratorConfig};
use freelunch::graph::spanner_check::verify_edge_stretch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense communication graph: n = 400 nodes, ~16k edges.
    let graph = connected_erdos_renyi(&GeneratorConfig::new(400, 42), 0.2)?;
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Sampler with k = 2 levels (stretch bound 2·3² − 1 = 17) and h = 7
    // trials-per-level budget; practical constants (see DESIGN.md).
    let params = SamplerParams::with_constants(
        2,
        7,
        ConstantPolicy::Practical {
            target_factor: 4.0,
            query_factor: 4.0,
        },
    )?;
    let sampler = Sampler::new(params);
    let outcome = sampler.run(&graph, 7)?;

    println!(
        "spanner: {} edges ({:.1}% of the graph), paper size bound n^(1+delta) = {:.0}",
        outcome.spanner_size(),
        100.0 * outcome.spanner_size() as f64 / graph.edge_count() as f64,
        params.size_bound(graph.node_count()),
    );
    println!(
        "construction cost: {} rounds, {} messages ({:.2} messages per edge of G)",
        outcome.cost.rounds,
        outcome.cost.messages,
        outcome.cost.messages as f64 / graph.edge_count() as f64,
    );

    // Verify the stretch guarantee of Theorem 9.
    let report = verify_edge_stretch(&graph, outcome.spanner_edges().iter().copied())?;
    println!(
        "stretch: max {} / mean {:.2} (bound {})",
        report.max_stretch,
        report.mean_stretch,
        params.stretch_bound()
    );
    assert!(
        report.satisfies(params.stretch_bound()),
        "the spanner must respect the bound"
    );

    // Per-level breakdown.
    for level in &outcome.levels {
        println!(
            "level {}: {} nodes, {} edges, {} light / {} heavy / {} ambiguous, {} centers, +{} spanner edges",
            level.level,
            level.nodes,
            level.edges,
            level.light,
            level.heavy,
            level.ambiguous,
            level.centers,
            level.spanner_edges_added
        );
    }
    Ok(())
}
