//! Crash-recovery drill with genuine OS processes: a two-rank TCP execution
//! in which rank 1 checkpoints every round boundary, abruptly exits
//! mid-execution, and is relaunched from its last checkpoint file — while
//! rank 0, under [`RecoveryPolicy::Retry`], holds the barrier until the
//! rank rejoins. Both ranks then finish and independently verify that
//! outputs, [`ExecutionMetrics`] and [`MessageLedger`] are bit-identical to
//! an uninterrupted in-process replay: the free-lunch contract survives a
//! kill.
//!
//! ```sh
//! cargo run --release --example recovery_drill
//! ```
//!
//! With no arguments the process orchestrates: it reserves two localhost
//! ports and a checkpoint path, spawns rank 0 (the survivor) and rank 1
//! (the victim, which exits after round `KILL_ROUND` without any shutdown
//! handshake), waits for the victim to die, then spawns the relauncher,
//! which restores [`NetworkCheckpoint::read_from_file`] and re-enters the
//! mesh through [`TcpTransport::resume_from`].
//!
//! [`ExecutionMetrics`]: freelunch::runtime::ExecutionMetrics
//! [`MessageLedger`]: freelunch::runtime::MessageLedger

use freelunch::algorithms::{is_maximal_independent_set, LubyMis};
use freelunch::graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch::graph::MultiGraph;
use freelunch::runtime::transport::{RecoveryPolicy, TcpConfig, TcpTransport};
use freelunch::runtime::{
    ChurnPlan, FaultPlan, InitialKnowledge, Network, NetworkCheckpoint, NetworkConfig,
};
use std::net::{SocketAddr, TcpListener};
use std::process::Command;
use std::time::Duration;

const SEED: u64 = 23;
const BUDGET: u32 = 300;
/// The victim exits right after completing this round (having checkpointed
/// it), with its sockets torn down by the OS — no goodbye frame.
const KILL_ROUND: u32 = 3;

fn graph() -> Result<MultiGraph, Box<dyn std::error::Error>> {
    Ok(sparse_connected_erdos_renyi(
        &GeneratorConfig::new(500, 17),
        6.0,
    )?)
}

fn factory(_: freelunch::graph::NodeId, knowledge: &InitialKnowledge) -> LubyMis {
    LubyMis::new(knowledge.degree())
}

/// Verifies a finished rank against an uninterrupted in-process replay.
fn verify(
    rank: usize,
    network: &Network<LubyMis, TcpTransport<<LubyMis as freelunch::runtime::NodeProgram>::Message>>,
    graph: &MultiGraph,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut reference = Network::new(graph, NetworkConfig::with_seed(SEED), factory)?;
    reference.run_until_halt(BUDGET)?;
    let reference_states: Vec<_> = reference.programs().iter().map(LubyMis::state).collect();
    let owned = network.owned_nodes();
    let states: Vec<_> = network.programs()[owned.clone()]
        .iter()
        .map(LubyMis::state)
        .collect();
    assert_eq!(
        states, reference_states[owned],
        "rank {rank}: outputs diverged from the uninterrupted replay"
    );
    assert_eq!(
        network.metrics(),
        reference.metrics(),
        "rank {rank}: metrics diverged"
    );
    assert_eq!(
        network.ledger(),
        reference.ledger(),
        "rank {rank}: message ledger diverged"
    );
    assert!(is_maximal_independent_set(graph, &reference_states));
    Ok(())
}

/// Rank 0: the survivor. Runs to quiescence under `Retry`, riding out the
/// victim's death and re-admitting it at the barrier.
fn run_survivor(peers: Vec<SocketAddr>) -> Result<(), Box<dyn std::error::Error>> {
    let graph = graph()?;
    let mut config = TcpConfig::new(0, peers).with_recovery(RecoveryPolicy::Retry { attempts: 6 });
    config.io_timeout = Duration::from_secs(10);
    let transport = TcpTransport::connect(&config)?;
    let mut network = Network::with_transport(
        &graph,
        NetworkConfig::with_seed(SEED),
        FaultPlan::none(),
        transport,
        factory,
    )?;
    network.run_until_halt(BUDGET)?;
    let recovered = network.transport().recovered_peers_total();
    assert_eq!(recovered, 1, "survivor should have re-admitted the victim");
    verify(0, &network, &graph)?;
    let cost = network.cost();
    println!(
        "rank 0 (survivor): rounds={}, messages={}, peers recovered={recovered} — \
         observables identical to the uninterrupted replay ✓",
        cost.rounds, cost.messages
    );
    Ok(())
}

/// Rank 1, first life: checkpoint every round boundary, then die abruptly.
fn run_victim(
    peers: Vec<SocketAddr>,
    checkpoint_path: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let graph = graph()?;
    let config = TcpConfig::new(1, peers);
    let transport = TcpTransport::connect(&config)?;
    let mut network = Network::with_transport(
        &graph,
        NetworkConfig::with_seed(SEED),
        FaultPlan::none(),
        transport,
        factory,
    )?;
    for _ in 0..KILL_ROUND {
        network.run_round()?;
        // Checkpoint every boundary, atomically (tmp + rename): a crash
        // mid-write can never tear the last good checkpoint.
        network.checkpoint().write_to_file(checkpoint_path)?;
    }
    println!(
        "rank 1 (victim): checkpointed round {KILL_ROUND} to {checkpoint_path}, exiting abruptly"
    );
    // A genuine crash: no destructors, no shutdown handshake — the OS tears
    // the sockets down and the survivor sees EOF at the next barrier.
    std::process::exit(0);
}

/// Rank 1, second life: restore the checkpoint file, rejoin the mesh, run
/// to quiescence, verify.
fn run_relaunched(
    peers: Vec<SocketAddr>,
    checkpoint_path: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let graph = graph()?;
    let checkpoint = NetworkCheckpoint::read_from_file(checkpoint_path)?;
    assert_eq!(checkpoint.round, KILL_ROUND, "stale or missing checkpoint");
    let config = TcpConfig::new(1, peers);
    let transport =
        TcpTransport::resume_from(&config, checkpoint.round, checkpoint.fault_totals())?;
    let mut network = Network::restore_with_plans(
        &graph,
        FaultPlan::none(),
        ChurnPlan::none(),
        transport,
        &checkpoint,
        factory,
    )?;
    network.run_until_halt(BUDGET)?;
    verify(1, &network, &graph)?;
    let cost = network.cost();
    println!(
        "rank 1 (relaunched): resumed at round {KILL_ROUND}, finished at round {} with \
         messages={} — observables identical to the uninterrupted replay ✓",
        cost.rounds, cost.messages
    );
    Ok(())
}

/// Orchestrator: reserve ports and a checkpoint path, run the three lives.
fn orchestrate() -> Result<(), Box<dyn std::error::Error>> {
    let peers: Vec<SocketAddr> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").and_then(|l| l.local_addr()))
        .collect::<Result<_, _>>()?;
    let peer_list = peers
        .iter()
        .map(|addr| addr.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let checkpoint_path = std::env::temp_dir().join(format!(
        "freelunch-recovery-drill-{}.flcp",
        std::process::id()
    ));
    let checkpoint_path = checkpoint_path.to_string_lossy().into_owned();
    println!("spawning survivor + victim over {peer_list}; checkpoint at {checkpoint_path}");

    let exe = std::env::current_exe()?;
    let spawn = |rank: &str, resume: bool| {
        let mut command = Command::new(&exe);
        command
            .env("FREELUNCH_RANK", rank)
            .env("FREELUNCH_PEERS", &peer_list)
            .env("FREELUNCH_CHECKPOINT", &checkpoint_path);
        if resume {
            command.env("FREELUNCH_RESUME", "1");
        }
        command.spawn()
    };

    let survivor = spawn("0", false)?;
    let victim = spawn("1", false)?;

    let victim_status = victim.wait_with_output()?;
    if !victim_status.status.success() {
        return Err(format!("victim exited with {}", victim_status.status).into());
    }
    println!("victim is dead; relaunching rank 1 from its checkpoint");
    let relaunched = spawn("1", true)?;

    for (name, child) in [("survivor", survivor), ("relaunched rank 1", relaunched)] {
        let status = child.wait_with_output()?;
        if !status.status.success() {
            return Err(format!("{name} exited with {}", status.status).into());
        }
    }
    std::fs::remove_file(&checkpoint_path).ok();
    println!("kill/relaunch drill complete: every rank bit-identical to the uninterrupted run ✓");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    match std::env::var("FREELUNCH_RANK") {
        Ok(rank) => {
            let peers = std::env::var("FREELUNCH_PEERS")?
                .split(',')
                .map(|addr| addr.parse())
                .collect::<Result<Vec<SocketAddr>, _>>()?;
            let checkpoint_path = std::env::var("FREELUNCH_CHECKPOINT")?;
            match (rank.as_str(), std::env::var("FREELUNCH_RESUME").is_ok()) {
                ("0", _) => run_survivor(peers),
                ("1", false) => run_victim(peers, &checkpoint_path),
                ("1", true) => run_relaunched(peers, &checkpoint_path),
                (other, _) => Err(format!("unknown rank {other}").into()),
            }
        }
        Err(_) => orchestrate(),
    }
}
