//! Sequential vs. sharded execution of Luby's MIS: same seed, same graph,
//! different worker-thread counts — and provably identical executions.
//!
//! ```sh
//! cargo run --release --example sharded_engine
//! ```

use freelunch::algorithms::{is_maximal_independent_set, LubyMis};
use freelunch::graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch::runtime::{Network, NetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(20_000, 9), 8.0)?;
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let mut runs = Vec::new();
    for shards in [1usize, 2, 8] {
        let config = NetworkConfig::with_seed(4).sharded(shards);
        let start = std::time::Instant::now();
        let mut network = Network::new(&graph, config, |_, knowledge| {
            LubyMis::new(knowledge.degree())
        })?;
        network.run_until_halt(300)?;
        let elapsed = start.elapsed();
        let cost = network.cost();
        let states: Vec<_> = network.programs().iter().map(LubyMis::state).collect();
        assert!(is_maximal_independent_set(&graph, &states));
        println!(
            "shards={shards}: rounds={}, messages={}, wall={elapsed:.2?}",
            cost.rounds, cost.messages
        );
        runs.push((states, network.metrics().clone()));
    }

    // The engine's core guarantee: outputs and per-round metrics are
    // bit-identical no matter how many worker threads stepped the nodes.
    assert!(runs.windows(2).all(|w| w[0] == w[1]));
    println!("all executions bit-identical across shard counts ✓");
    Ok(())
}
