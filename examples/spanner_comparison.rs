//! Compare the spanner constructions available in the workspace — `Sampler`
//! (the paper's algorithm), Baswana–Sen, the Derbel-style cluster spanner
//! and the greedy reference — on one dense graph: size, measured stretch,
//! rounds and messages.
//!
//! Run with `cargo run --example spanner_comparison`.

use freelunch::baselines::{BaswanaSen, ClusterSpanner, GreedySpanner};
use freelunch::core::sampler::{ConstantPolicy, Sampler, SamplerParams};
use freelunch::core::spanner_api::SpannerAlgorithm;
use freelunch::graph::generators::{connected_erdos_renyi, GeneratorConfig};
use freelunch::graph::spanner_check::verify_edge_stretch;
use freelunch::graph::MultiGraph;

fn report(
    graph: &MultiGraph,
    algorithm: &dyn SpannerAlgorithm,
) -> Result<(), Box<dyn std::error::Error>> {
    let result = algorithm.construct(graph, 13)?;
    let stretch = verify_edge_stretch(graph, result.edges.iter().copied())?;
    println!(
        "{:<28} | {:>7} edges | stretch {:>3} (bound {:>3}) | {:>5} rounds | {:>9} messages",
        result.algorithm,
        result.size(),
        stretch.max_stretch,
        result.multiplicative_stretch,
        result.cost.rounds,
        result.cost.messages
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = connected_erdos_renyi(&GeneratorConfig::new(400, 5), 0.2)?;
    println!(
        "graph: {} nodes, {} edges\n{:-<110}",
        graph.node_count(),
        graph.edge_count(),
        ""
    );

    let sampler = Sampler::new(SamplerParams::with_constants(
        2,
        7,
        ConstantPolicy::Practical {
            target_factor: 4.0,
            query_factor: 4.0,
        },
    )?);
    report(&graph, &sampler)?;
    report(&graph, &BaswanaSen::new(2)?)?;
    report(&graph, &BaswanaSen::new(3)?)?;
    report(&graph, &ClusterSpanner::new(1)?)?;
    report(&graph, &GreedySpanner::new(3)?)?;
    report(&graph, &GreedySpanner::new(5)?)?;

    println!(
        "\nNote how only the Sampler's message count stays decoupled from |E|; every other\nconstruction pays Ω(m) messages, which is exactly the gap Theorem 2 closes."
    );
    Ok(())
}
