//! The same Luby-MIS execution as two genuine OS processes talking TCP over
//! localhost — and bit-identical to the single-process in-process run.
//!
//! ```sh
//! cargo run --release --example tcp_transport
//! ```
//!
//! With no arguments the process orchestrates: it reserves two localhost
//! ports, then re-spawns itself twice (`FREELUNCH_RANK=0|1`), one process
//! per rank. Each rank builds the identical graph from the shared seed,
//! owns its contiguous half of the nodes, and exchanges one length-prefixed
//! frame per peer per round ([`TcpTransport`]). After halting, each rank
//! *independently* replays the whole execution on the in-process backend
//! and asserts that its TCP run produced the identical outputs (on its
//! owned range), [`ExecutionMetrics`] and [`MessageLedger`] — the
//! cross-backend identity contract of `docs/TRANSPORT.md`.

use freelunch::algorithms::{is_maximal_independent_set, LubyMis};
use freelunch::graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch::graph::MultiGraph;
use freelunch::runtime::transport::{TcpConfig, TcpTransport};
use freelunch::runtime::{FaultPlan, Network, NetworkConfig};
use std::net::{SocketAddr, TcpListener};
use std::process::Command;

const SEED: u64 = 11;
const BUDGET: u32 = 300;

fn graph() -> Result<MultiGraph, Box<dyn std::error::Error>> {
    Ok(sparse_connected_erdos_renyi(
        &GeneratorConfig::new(2_000, 9),
        6.0,
    )?)
}

/// One rank of the process group: run over TCP, then verify against a local
/// in-process replay.
fn run_rank(rank: usize, peers: Vec<SocketAddr>) -> Result<(), Box<dyn std::error::Error>> {
    let graph = graph()?;
    let config = TcpConfig::new(rank, peers);
    let transport = TcpTransport::connect(&config)?;
    let factory =
        |_, knowledge: &freelunch::runtime::InitialKnowledge| LubyMis::new(knowledge.degree());

    let start = std::time::Instant::now();
    let mut network = Network::with_transport(
        &graph,
        NetworkConfig::with_seed(SEED),
        FaultPlan::none(),
        transport,
        factory,
    )?;
    network.run_until_halt(BUDGET)?;
    let elapsed = start.elapsed();
    let owned = network.owned_nodes();
    let states: Vec<_> = network.programs()[owned.clone()]
        .iter()
        .map(LubyMis::state)
        .collect();

    // Independent in-process replay: same graph, same seed, one process.
    let mut reference = Network::new(&graph, NetworkConfig::with_seed(SEED), factory)?;
    reference.run_until_halt(BUDGET)?;
    let reference_states: Vec<_> = reference.programs().iter().map(LubyMis::state).collect();

    assert_eq!(
        states,
        reference_states[owned.clone()],
        "rank {rank}: TCP outputs diverged from the in-process replay"
    );
    assert_eq!(
        network.metrics(),
        reference.metrics(),
        "rank {rank}: metrics diverged"
    );
    assert_eq!(
        network.ledger(),
        reference.ledger(),
        "rank {rank}: message ledger diverged"
    );
    assert!(is_maximal_independent_set(&graph, &reference_states));

    let cost = network.cost();
    println!(
        "rank {rank}: nodes {}..{} of {}, rounds={}, messages={}, wall={elapsed:.2?} — \
         outputs, metrics and ledger identical to the in-process replay ✓",
        owned.start,
        owned.end,
        graph.node_count(),
        cost.rounds,
        cost.messages,
    );
    Ok(())
}

/// Orchestrator: reserve two localhost ports, then spawn one child process
/// per rank and wait for both to verify.
fn orchestrate() -> Result<(), Box<dyn std::error::Error>> {
    let peers: Vec<SocketAddr> = (0..2)
        .map(|_| {
            // Bind-and-drop reserves a free port; the child re-binds it.
            TcpListener::bind("127.0.0.1:0").and_then(|l| l.local_addr())
        })
        .collect::<Result<_, _>>()?;
    let peer_list = peers
        .iter()
        .map(|addr| addr.to_string())
        .collect::<Vec<_>>()
        .join(",");
    println!("spawning 2 ranks over {peer_list}");

    let exe = std::env::current_exe()?;
    let children: Vec<_> = (0..2)
        .map(|rank| {
            Command::new(&exe)
                .env("FREELUNCH_RANK", rank.to_string())
                .env("FREELUNCH_PEERS", &peer_list)
                .spawn()
        })
        .collect::<Result<_, _>>()?;
    for (rank, child) in children.into_iter().enumerate() {
        let status = child.wait_with_output()?;
        if !status.status.success() {
            return Err(format!("rank {rank} exited with {}", status.status).into());
        }
    }
    println!("both ranks verified against the in-process backend ✓");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    match std::env::var("FREELUNCH_RANK") {
        Ok(rank) => {
            let peers = std::env::var("FREELUNCH_PEERS")?
                .split(',')
                .map(|addr| addr.parse())
                .collect::<Result<Vec<SocketAddr>, _>>()?;
            run_rank(rank.parse()?, peers)
        }
        Err(_) => orchestrate(),
    }
}
