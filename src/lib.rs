//! # freelunch
//!
//! Umbrella crate for the reproduction of *"Message Reduction in the LOCAL
//! Model Is a Free Lunch"* (Bitton, Emek, Izumi, Kutten; DISC 2019).
//!
//! The workspace is split into focused crates; this crate re-exports them so
//! examples and downstream users can depend on a single entry point:
//!
//! * [`graph`] — multigraph substrate with unique edge IDs, generators
//!   (including `O(n + m)` sparse ones for million-node workloads),
//!   traversal, cluster contraction, spanner verification, and the frozen
//!   CSR view ([`graph::CsrGraph`]) behind the hot loops.
//! * [`runtime`] — synchronous LOCAL-model simulator with message/round
//!   accounting, per-node deterministic randomness, and a sharded parallel
//!   round engine whose executions are bit-identical to the sequential one
//!   at every shard count.
//! * [`core`] — the paper's contribution: the `Sampler` spanner construction
//!   and the message-reduction schemes built on top of it.
//! * [`baselines`] — Baswana–Sen, Derbel-style, greedy spanners; gossip and
//!   direct-flooding simulation baselines.
//! * [`algorithms`] — example LOCAL algorithms (MIS, coloring, broadcast,
//!   leader election, matching) used as the algorithm being simulated.
//!
//! # Quick start
//!
//! ```
//! use freelunch::core::sampler::{Sampler, SamplerParams};
//! use freelunch::graph::generators::{erdos_renyi, GeneratorConfig};
//! use freelunch::graph::spanner_check::verify_edge_stretch;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = erdos_renyi(&GeneratorConfig::new(200, 7), 0.2)?;
//! let params = SamplerParams::new(2, 4)?;
//! let outcome = Sampler::new(params).run(&graph, 7)?;
//! let report = verify_edge_stretch(&graph, outcome.spanner_edges().iter().copied())?;
//! assert!(report.max_stretch as u32 <= params.stretch_bound());
//! # Ok(())
//! # }
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the crate map, the
//! data-flow picture, and the paper-section → module table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use freelunch_algorithms as algorithms;
pub use freelunch_baselines as baselines;
pub use freelunch_core as core;
pub use freelunch_graph as graph;
pub use freelunch_runtime as runtime;
