//! The churn correctness matrix: algorithms × workloads × churn profiles ×
//! shard counts × backends.
//!
//! Every LOCAL algorithm runs on every workload family under every churn
//! profile (seeded insert streams, delete streams, mixed streams with
//! scheduled node leave/join, and churn combined with message faults), and
//! the suite asserts three layers:
//!
//! 1. **Cross-shard determinism** — outputs, metrics, the message ledger,
//!    the surviving topology (live edge count), crash state and the error
//!    outcome are bit-identical across shard counts {1, 2, 8} at equal
//!    `(network seed, plan)`, extending `tests/determinism_matrix.rs` and
//!    `tests/fault_matrix.rs` to dynamic graphs.
//! 2. **Empty-plan identity** — an installed but empty [`ChurnPlan`] is
//!    byte-identical to never installing a plan at all.
//! 3. **Backend independence** — churn is resolved in the engine *before*
//!    the round barrier hands frames to a transport, so the in-process
//!    backend, the wire-faithful mock (every payload encode/decoded) and a
//!    two-rank TCP execution over localhost (churn events ride the frame's
//!    churn section) agree on every observable, and both TCP ranks hold the
//!    identical global view.
//!
//! Set `CHURN_MATRIX_SMOKE=1` to shrink the grid (one workload, three
//! profiles) for quick CI signal; the full grid runs under plain
//! `cargo test`. The event model and canonical application order the matrix
//! pins down are documented in `docs/CHURN.md`.

use freelunch::algorithms::{BallGathering, LubyMis, MaximalMatching, RandomizedColoring};
use freelunch::core::planner::SchemePlanner;
use freelunch::graph::generators::{
    barabasi_albert, sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
};
use freelunch::graph::{MultiGraph, NodeId};
use freelunch::runtime::transport::{
    InProcessTransport, MockTransport, TcpConfig, TcpTransport, Transport, WireCodec,
};
use freelunch::runtime::{
    ChurnPlan, ExecutionMetrics, FaultPlan, InitialKnowledge, MessageLedger, Network,
    NetworkConfig, NodeProgram,
};
use std::fmt::Debug;
use std::net::{SocketAddr, TcpListener};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Gathering horizon of the broadcast workload.
const BROADCAST_T: u32 = 2;

fn smoke() -> bool {
    std::env::var_os("CHURN_MATRIX_SMOKE").is_some()
}

/// The workload families (one in smoke mode, three in the full grid).
fn workloads() -> Vec<(&'static str, MultiGraph)> {
    let mut families = vec![(
        "sparse-er",
        sparse_connected_erdos_renyi(&GeneratorConfig::new(64, 31), 5.0).unwrap(),
    )];
    if !smoke() {
        families.push((
            "scale-free",
            barabasi_albert(&GeneratorConfig::new(64, 32), 3).unwrap(),
        ));
        families.push((
            "communities",
            sparse_planted_partition(&GeneratorConfig::new(64, 33), 4, 7.0, 1.0).unwrap(),
        ));
    }
    families
}

/// The mixed stream every grid shares: seeded insert *and* delete rates
/// plus a scheduled departure that later rejoins — so the matrix exercises
/// all four [`freelunch::runtime::ChurnEvent`] kinds every run.
fn mixed_plan(graph: &MultiGraph) -> ChurnPlan {
    let n = graph.node_count();
    ChurnPlan::new(203)
        .with_insert_rate(0.03)
        .with_delete_rate(0.03)
        .with_node_leave(2, NodeId::from_usize(n / 3))
        .with_node_join(5, NodeId::from_usize(n / 3))
}

/// The churn profiles of the matrix. Every profile carries both plans so
/// `churn+faults` can combine the mixed stream with an adversarial
/// [`FaultPlan`]; all other profiles leave the fault plan empty. Smoke mode
/// keeps `none`, `mixed` and `churn+faults`.
fn profiles(graph: &MultiGraph) -> Vec<(&'static str, FaultPlan, ChurnPlan)> {
    let n = graph.node_count();
    let mut all = vec![("none", FaultPlan::none(), ChurnPlan::none())];
    if !smoke() {
        all.push((
            "insert-only",
            FaultPlan::none(),
            ChurnPlan::new(201).with_insert_rate(0.05),
        ));
        all.push((
            "delete-only",
            FaultPlan::none(),
            ChurnPlan::new(202).with_delete_rate(0.05),
        ));
    }
    all.push(("mixed", FaultPlan::none(), mixed_plan(graph)));
    all.push((
        "churn+faults",
        FaultPlan::new(301)
            .with_drop_probability(0.1)
            .with_crash(NodeId::from_usize(n / 2), 3),
        mixed_plan(graph),
    ));
    all
}

/// Everything observable about one (graph, plans, seed, shards, backend)
/// execution.
#[derive(Debug, Clone, PartialEq)]
struct Scenario<O> {
    outputs: Vec<O>,
    metrics: ExecutionMetrics,
    ledger: MessageLedger,
    crashed: Vec<NodeId>,
    /// Surviving topology after the run: `None` when no churn plan was
    /// installed, otherwise the overlay's live edge count.
    live_edges: Option<usize>,
    /// Stringified error if the run did not halt in budget (some churned
    /// scenarios legitimately never converge); must itself be deterministic.
    error: Option<String>,
}

/// Extracts the full observable set from a finished network.
fn observe<P, O, T>(
    network: &Network<P, T>,
    error: Option<String>,
    extract: impl Fn(&P) -> O,
) -> Scenario<O>
where
    P: NodeProgram,
    T: Transport<P::Message>,
{
    Scenario {
        outputs: network.programs().iter().map(&extract).collect(),
        metrics: network.metrics().clone(),
        ledger: network.ledger().clone(),
        crashed: network.crashed_nodes(),
        live_edges: network.churn_overlay().map(|o| o.live_edge_count()),
        error,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_scenario<P, O>(
    graph: &MultiGraph,
    faults: &FaultPlan,
    churn: &ChurnPlan,
    seed: u64,
    budget: u32,
    shards: usize,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O,
) -> Scenario<O>
where
    P: NodeProgram,
{
    let config = NetworkConfig::with_seed(seed).sharded(shards);
    let mut network = Network::with_plans(
        graph,
        config,
        faults.clone(),
        churn.clone(),
        InProcessTransport::new(),
        factory,
    )
    .unwrap();
    let error = network.run_until_halt(budget).err().map(|e| e.to_string());
    observe(&network, error, extract)
}

/// Drives one algorithm through the whole matrix: for every workload ×
/// profile it pins cross-shard bit-identity and (for `none`) the
/// empty-plan ≡ no-plan identity, then checks the grid is not vacuous.
fn drive<P, O>(
    algo: &str,
    seed: u64,
    budget: u32,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O + Copy,
) where
    P: NodeProgram,
    O: PartialEq + Debug + Clone,
{
    for (workload, graph) in workloads() {
        let mut baseline: Option<Scenario<O>> = None;
        let mut perturbed = false;
        for (profile, faults, churn) in profiles(&graph) {
            let label = format!("{algo}/{workload}/{profile}");
            let reference = run_scenario(
                &graph,
                &faults,
                &churn,
                seed,
                budget,
                SHARD_COUNTS[0],
                factory,
                extract,
            );
            for &shards in &SHARD_COUNTS[1..] {
                let sharded = run_scenario(
                    &graph, &faults, &churn, seed, budget, shards, factory, extract,
                );
                assert_eq!(reference, sharded, "{label}: differs at {shards} shards");
            }
            match profile {
                "none" => {
                    // An installed empty churn plan must be indistinguishable
                    // from no plan at all — byte for byte, down to not even
                    // materialising an overlay.
                    let config = NetworkConfig::with_seed(seed);
                    let mut network = Network::new(&graph, config, factory).unwrap();
                    let error = network.run_until_halt(budget).err().map(|e| e.to_string());
                    let bare = observe(&network, error, extract);
                    assert_eq!(reference, bare, "{label}: empty plan differs from no plan");
                    baseline = Some(reference);
                }
                _ => {
                    // The grid must bite per profile: a churn stream that
                    // moves no observable is not testing anything.
                    let base = baseline.as_ref().expect("none runs first");
                    let moved = base.outputs != reference.outputs
                        || base.metrics != reference.metrics
                        || base.live_edges != reference.live_edges;
                    perturbed |= moved;
                }
            }
        }
        assert!(
            perturbed,
            "{algo}/{workload}: no churn profile perturbed the execution — the matrix is vacuous"
        );
    }
}

#[test]
fn churn_matrix_mis() {
    drive(
        "luby-mis",
        1,
        300,
        |_, knowledge| LubyMis::new(knowledge.degree()),
        LubyMis::state,
    );
}

#[test]
fn churn_matrix_coloring() {
    drive(
        "coloring",
        2,
        400,
        |_, knowledge| RandomizedColoring::new(knowledge.degree()),
        RandomizedColoring::color,
    );
}

#[test]
fn churn_matrix_matching() {
    drive(
        "matching",
        3,
        150,
        |_, _| MaximalMatching::new(),
        MaximalMatching::matched_over,
    );
}

#[test]
fn churn_matrix_broadcast() {
    drive(
        "ball-gathering",
        4,
        BROADCAST_T + 6,
        |node, _| BallGathering::new(node, BROADCAST_T),
        BallGathering::known_ids,
    );
}

/// Runs the same plans over a two-process localhost TCP group: one
/// `Network` per rank in scoped threads, churn events riding each frame's
/// churn section. Returns every rank's scenario; rank 0's outputs are the
/// spliced global node order, later ranks keep only their owned slice (the
/// caller compares their metrics/ledger/topology views instead).
#[allow(clippy::too_many_arguments)]
fn tcp_scenarios<P, O>(
    graph: &MultiGraph,
    faults: &FaultPlan,
    churn: &ChurnPlan,
    seed: u64,
    budget: u32,
    shards: usize,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy + Send + Sync,
    extract: impl Fn(&P) -> O + Copy + Send + Sync,
) -> Vec<Scenario<O>>
where
    P: NodeProgram,
    P::Message: WireCodec,
    O: PartialEq + Debug + Send,
{
    const WORLD: usize = 2;
    // Bind every rank's listener first (port 0 = OS-assigned), so the
    // rendezvous has no port race by construction.
    let listeners: Vec<TcpListener> = (0..WORLD)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<SocketAddr> = listeners
        .iter()
        .map(|listener| listener.local_addr().unwrap())
        .collect();
    let mut per_rank: Vec<Scenario<O>> = std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let config = TcpConfig::new(rank, peers.clone());
                scope.spawn(move || {
                    let transport = TcpTransport::with_listener(listener, &config).unwrap();
                    let mut network = Network::with_plans(
                        graph,
                        NetworkConfig::with_seed(seed).sharded(shards),
                        faults.clone(),
                        churn.clone(),
                        transport,
                        factory,
                    )
                    .unwrap();
                    let error = network.run_until_halt(budget).err().map(|e| e.to_string());
                    let owned = network.owned_nodes();
                    let mut scenario = observe(&network, error, extract);
                    scenario.outputs = network.programs()[owned].iter().map(extract).collect();
                    scenario
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    // Owned ranges are ascending and contiguous, so concatenating the
    // per-rank outputs in rank order reassembles the full node order.
    let spliced: Vec<O> = per_rank
        .iter_mut()
        .flat_map(|scenario| scenario.outputs.drain(..))
        .collect();
    per_rank[0].outputs = spliced;
    per_rank
}

/// Churn plane × transport: the [`ChurnPlan`] is resolved once in the
/// engine before the barrier hands frames to a backend, so the in-process
/// run, the wire-faithful mock and a two-rank TCP group must agree on
/// every observable — and both TCP ranks must hold the identical global
/// view (their stats exchange covers churn rounds too). A reduced grid
/// (first workload, every profile, shards {1, 2}) over two algorithms is
/// enough to pin this: any keying or ordering drift would desynchronise
/// the very first churned round.
#[test]
fn churn_resolution_is_backend_independent() {
    fn check<P, O>(
        algo: &str,
        seed: u64,
        budget: u32,
        factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy + Send + Sync,
        extract: impl Fn(&P) -> O + Copy + Send + Sync,
    ) where
        P: NodeProgram,
        P::Message: WireCodec,
        O: PartialEq + Debug + Clone + Send,
    {
        let (workload, graph) = workloads().remove(0);
        for (profile, faults, churn) in profiles(&graph) {
            let label = format!("{algo}/{workload}/{profile}");
            for shards in [1usize, 2] {
                let reference = run_scenario(
                    &graph, &faults, &churn, seed, budget, shards, factory, extract,
                );

                let config = NetworkConfig::with_seed(seed).sharded(shards);
                let mut network = Network::with_plans(
                    &graph,
                    config,
                    faults.clone(),
                    churn.clone(),
                    MockTransport::new(),
                    factory,
                )
                .unwrap();
                let error = network.run_until_halt(budget).err().map(|e| e.to_string());
                let mock = observe(&network, error, extract);
                assert_eq!(
                    reference, mock,
                    "{label}: mock backend diverged at {shards} shards"
                );

                for (rank, tcp) in tcp_scenarios(
                    &graph, &faults, &churn, seed, budget, shards, factory, extract,
                )
                .into_iter()
                .enumerate()
                {
                    if rank == 0 {
                        assert_eq!(
                            reference.outputs, tcp.outputs,
                            "{label}: TCP outputs differ at {shards} shards"
                        );
                    }
                    assert_eq!(
                        reference.metrics, tcp.metrics,
                        "{label}: TCP rank {rank} metrics differ at {shards} shards"
                    );
                    assert_eq!(
                        reference.ledger, tcp.ledger,
                        "{label}: TCP rank {rank} ledger differs at {shards} shards"
                    );
                    assert_eq!(
                        reference.crashed, tcp.crashed,
                        "{label}: TCP rank {rank} crash state differs at {shards} shards"
                    );
                    assert_eq!(
                        reference.live_edges, tcp.live_edges,
                        "{label}: TCP rank {rank} topology differs at {shards} shards"
                    );
                    assert_eq!(
                        reference.error, tcp.error,
                        "{label}: TCP rank {rank} error outcome differs at {shards} shards"
                    );
                }
            }
        }
    }
    check(
        "luby-mis",
        1,
        300,
        |_, knowledge| LubyMis::new(knowledge.degree()),
        LubyMis::state,
    );
    check(
        "ball-gathering",
        4,
        BROADCAST_T + 6,
        |node, _| BallGathering::new(node, BROADCAST_T),
        BallGathering::known_ids,
    );
}

/// The planner row of the churn matrix: a planner-driven run re-plans at
/// epoch boundaries from the live overlay via
/// [`SchemePlanner::plan_overlay`], which re-samples [`GraphStats`] from
/// the surviving topology. The per-epoch plan sequence must be
/// bit-identical across replays and across shard counts {1, 2, 8} (churn
/// resolution is engine-global), the decision must never flip mid-run on
/// these workloads, and the stream must actually move the sampled stats —
/// otherwise the row is vacuous.
///
/// [`GraphStats`]: freelunch::core::planner::GraphStats
#[test]
fn planner_replans_deterministically_under_churn() {
    let planner = SchemePlanner::new(BROADCAST_T).unwrap();
    for (workload, graph) in workloads() {
        let churn = mixed_plan(&graph);
        // Run the broadcast workload under the mixed stream, pausing every
        // two rounds (an "epoch") to re-plan from the live overlay.
        let epoch_plans = |shards: usize| {
            let config = NetworkConfig::with_seed(7).sharded(shards);
            let mut network = Network::with_plans(
                &graph,
                config,
                FaultPlan::none(),
                churn.clone(),
                InProcessTransport::new(),
                |node, _| BallGathering::new(node, BROADCAST_T),
            )
            .unwrap();
            let mut plans = Vec::new();
            for _epoch in 0..4 {
                network.run_rounds(2).unwrap();
                let overlay = network.churn_overlay().expect("churn plan installed");
                plans.push(planner.plan_overlay(overlay).unwrap());
            }
            plans
        };
        let reference = epoch_plans(SHARD_COUNTS[0]);
        let replay = epoch_plans(SHARD_COUNTS[0]);
        assert_eq!(reference, replay, "{workload}: replay diverged");
        assert_eq!(
            format!("{reference:?}"),
            format!("{replay:?}"),
            "{workload}: replay rendering diverged"
        );
        for &shards in &SHARD_COUNTS[1..] {
            assert_eq!(
                reference,
                epoch_plans(shards),
                "{workload}: plans differ at {shards} shards"
            );
        }
        for (epoch, plan) in reference.iter().enumerate() {
            assert_eq!(
                plan.decision, reference[0].decision,
                "{workload}: decision flipped at epoch {epoch}"
            );
        }
        assert!(
            reference
                .windows(2)
                .any(|pair| pair[0].stats != pair[1].stats),
            "{workload}: churn never moved the sampled stats — the planner row is vacuous"
        );
    }
}

/// The acceptance-criteria grid shape, pinned so a refactor cannot quietly
/// shrink the matrix: profiles {none, insert-only, delete-only, mixed,
/// churn+faults}, ≥ 3 workloads, shards {1, 2, 8}. (Four algorithms ride
/// through `drive` above.)
#[test]
fn matrix_grid_meets_the_acceptance_floor() {
    assert_eq!(SHARD_COUNTS, [1, 2, 8]);
    let graph = workloads().remove(0).1;
    let names: Vec<&str> = profiles(&graph).iter().map(|(name, _, _)| *name).collect();
    for required in ["none", "mixed", "churn+faults"] {
        assert!(names.contains(&required), "missing profile {required}");
    }
    if !smoke() {
        assert!(names.contains(&"insert-only"));
        assert!(names.contains(&"delete-only"));
        assert!(workloads().len() >= 3);
    }
    for (name, faults, churn) in profiles(&graph) {
        match name {
            // The clean profile must be truly empty on both planes.
            "none" => assert!(faults.is_empty() && churn.is_empty()),
            // Every churny profile actually schedules or streams something,
            // and only churn+faults carries an adversarial fault plan.
            "churn+faults" => assert!(!faults.is_empty() && !churn.is_empty()),
            _ => assert!(faults.is_empty() && !churn.is_empty(), "profile {name}"),
        }
        churn.validate().unwrap();
    }
}

/// The scheduling-parity row of the churn matrix: under the mixed churn
/// stream combined with message faults, the work-stealing scheduler must
/// reproduce the sequential engine and the static shard partition
/// bit-for-bit — churn events are resolved in canonical order at the round
/// barrier, before any worker claims a chunk, so the surviving topology is
/// scheduler-blind too.
#[test]
fn churn_matrix_scheduling_parity() {
    use freelunch::runtime::Scheduling;
    let graph = workloads().remove(0).1;
    let n = graph.node_count();
    let faults = FaultPlan::new(311)
        .with_drop_probability(0.1)
        .with_crash(NodeId::from_usize(n / 2), 3);
    let churn = mixed_plan(&graph);
    let run = |shards: usize, sched: Scheduling| {
        let config = NetworkConfig::with_seed(7)
            .sharded(shards)
            .scheduling(sched)
            .chunk_size(5);
        let mut network = Network::with_plans(
            &graph,
            config,
            faults.clone(),
            churn.clone(),
            InProcessTransport::new(),
            |_, knowledge| LubyMis::new(knowledge.degree()),
        )
        .unwrap();
        let error = network.run_until_halt(300).err().map(|e| e.to_string());
        observe(&network, error, LubyMis::state)
    };
    let serial = run(1, Scheduling::Dynamic);
    for shards in [2, 8] {
        for sched in [Scheduling::Dynamic, Scheduling::Static] {
            assert_eq!(
                serial,
                run(shards, sched),
                "churned run differs at {shards} shards under {sched:?}"
            );
        }
    }
}
