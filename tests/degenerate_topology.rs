//! Degenerate-partition sweep: the engine's chunking math (work-stealing
//! chunks, static shard ranges, TCP rank ranges) must stay correct when the
//! node count is smaller than — or barely above — the worker count. The
//! sweep pins `node_count ∈ {1, shards − 1, world − 1, world + 1}` plus
//! edgeless graphs (every node isolated) and graphs with an isolated tail,
//! across the in-process, mock and two-/four-rank TCP backends at shard
//! counts 1, 2 and 8, under both scheduling modes and a pathological
//! 1-node chunk size. A zero-node graph must be rejected up front by every
//! constructor, never panic downstream.

use freelunch::graph::generators::{path_graph, star_graph, GeneratorConfig};
use freelunch::graph::{MultiGraph, NodeId};
use freelunch::runtime::transport::{MockTransport, TcpConfig, TcpTransport};
use freelunch::runtime::{
    Context, Envelope, ExecutionMetrics, FaultPlan, MessageLedger, Network, NetworkConfig,
    NodeProgram, RuntimeError, Scheduling,
};
use std::net::{SocketAddr, TcpListener};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Broadcasts a beacon for two rounds, then halts. On an isolated node the
/// broadcast is a no-op, so the program is well defined on every topology
/// in the sweep while still exercising real traffic wherever edges exist.
#[derive(Debug)]
struct Pulse {
    heard: u32,
}

impl NodeProgram for Pulse {
    type Message = u32;

    fn init(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.broadcast(ctx.node().raw());
    }

    fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[Envelope<u32>]) {
        self.heard += inbox.len() as u32;
        if ctx.round() < 3 {
            ctx.broadcast(ctx.round());
        } else {
            ctx.halt();
        }
    }
}

fn pulse(_: NodeId, _: &freelunch::runtime::InitialKnowledge) -> Pulse {
    Pulse { heard: 0 }
}

/// A star on 6 nodes plus 3 isolated stragglers: maximal skew (node 0
/// carries every edge) with an idle tail — the shape that starves static
/// contiguous shard ranges.
fn star_with_isolated_tail() -> MultiGraph {
    let mut graph = MultiGraph::new(9);
    for leaf in 1..6 {
        graph
            .add_edge(NodeId::new(0), NodeId::from_usize(leaf))
            .unwrap();
    }
    graph
}

/// The sweep's topologies: every node count the chunking math can get
/// wrong. `shards − 1` appears as 1 and 7 (for shard counts 2 and 8),
/// `world − 1` as 1 (two ranks) and 3 (four ranks), `world + 1` as 3 and 5.
fn degenerate_graphs() -> Vec<(&'static str, MultiGraph)> {
    vec![
        ("single-node", MultiGraph::new(1)),
        ("two-isolated", MultiGraph::new(2)),
        ("seven-isolated", MultiGraph::new(7)),
        ("path-2", path_graph(&GeneratorConfig::new(2, 0)).unwrap()),
        ("path-3", path_graph(&GeneratorConfig::new(3, 0)).unwrap()),
        ("path-5", path_graph(&GeneratorConfig::new(5, 0)).unwrap()),
        ("path-7", path_graph(&GeneratorConfig::new(7, 0)).unwrap()),
        ("star-7", star_graph(&GeneratorConfig::new(7, 0)).unwrap()),
        ("star-with-tail", star_with_isolated_tail()),
    ]
}

type Observables = (Vec<u32>, ExecutionMetrics, MessageLedger, usize);

fn in_process_run(graph: &MultiGraph, config: NetworkConfig) -> Observables {
    let mut network = Network::new(graph, config, pulse).unwrap();
    network.run_until_halt(10).unwrap();
    let heard = network.programs().iter().map(|p| p.heard).collect();
    (
        heard,
        network.metrics().clone(),
        network.ledger().clone(),
        network.halted_count(),
    )
}

#[test]
fn zero_node_graph_is_rejected_not_panicked() {
    let graph = MultiGraph::new(0);
    let in_process = Network::new(&graph, NetworkConfig::default(), pulse);
    assert!(matches!(
        in_process.unwrap_err(),
        RuntimeError::InvalidConfig { .. }
    ));
    let mock = Network::with_transport(
        &graph,
        NetworkConfig::default().sharded(8),
        FaultPlan::none(),
        MockTransport::new(),
        pulse,
    );
    assert!(matches!(
        mock.unwrap_err(),
        RuntimeError::InvalidConfig { .. }
    ));
}

#[test]
fn degenerate_graphs_are_shard_sched_and_chunk_invariant() {
    for (name, graph) in degenerate_graphs() {
        let n = graph.node_count();
        let reference = in_process_run(&graph, NetworkConfig::with_seed(17));
        assert_eq!(reference.3, n, "{name}: wrong halted count at 1 shard");
        for shards in SHARD_COUNTS {
            for sched in [Scheduling::Dynamic, Scheduling::Static] {
                for chunk_size in [1, freelunch::runtime::DEFAULT_CHUNK_SIZE] {
                    let config = NetworkConfig::with_seed(17)
                        .sharded(shards)
                        .scheduling(sched)
                        .chunk_size(chunk_size);
                    let run = in_process_run(&graph, config);
                    let where_ = format!("{name}: {shards} shards, {sched:?}, chunk {chunk_size}");
                    assert_eq!(reference.0, run.0, "{where_}: outputs differ");
                    assert_eq!(reference.1, run.1, "{where_}: metrics differ");
                    assert_eq!(reference.2, run.2, "{where_}: ledgers differ");
                    assert_eq!(run.3, n, "{where_}: wrong halted count");
                }
            }
        }
    }
}

#[test]
fn degenerate_graphs_are_mock_invariant() {
    for (name, graph) in degenerate_graphs() {
        let reference = in_process_run(&graph, NetworkConfig::with_seed(17));
        for shards in SHARD_COUNTS {
            let config = NetworkConfig::with_seed(17).sharded(shards);
            let mut network = Network::with_transport(
                &graph,
                config,
                FaultPlan::none(),
                MockTransport::new(),
                pulse,
            )
            .unwrap();
            network.run_until_halt(10).unwrap();
            let heard: Vec<u32> = network.programs().iter().map(|p| p.heard).collect();
            assert_eq!(
                reference.0, heard,
                "{name}: mock outputs at {shards} shards"
            );
            assert_eq!(
                &reference.1,
                network.metrics(),
                "{name}: mock metrics at {shards} shards"
            );
            assert_eq!(
                &reference.2,
                network.ledger(),
                "{name}: mock ledger at {shards} shards"
            );
            assert_eq!(
                network.halted_count(),
                graph.node_count(),
                "{name}: mock halted count at {shards} shards"
            );
        }
    }
}

/// Runs the sweep program as a `world`-rank TCP group over localhost and
/// returns the spliced outputs plus every rank's (metrics, ledger,
/// halted count). With `node_count < world` the high ranks own *empty*
/// node ranges — they must still rendezvous, exchange every barrier and
/// agree on global termination through the remote-halted counts alone.
fn tcp_run(graph: &MultiGraph, world: usize, shards: usize) -> Vec<Observables> {
    let listeners: Vec<TcpListener> = (0..world)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<SocketAddr> = listeners
        .iter()
        .map(|listener| listener.local_addr().unwrap())
        .collect();
    let mut per_rank: Vec<Observables> = std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let config = TcpConfig::new(rank, peers.clone());
                scope.spawn(move || {
                    let transport = TcpTransport::with_listener(listener, &config).unwrap();
                    let mut network = Network::with_transport(
                        graph,
                        NetworkConfig::with_seed(17).sharded(shards),
                        FaultPlan::none(),
                        transport,
                        pulse,
                    )
                    .unwrap();
                    network.run_until_halt(10).unwrap();
                    let owned = network.owned_nodes();
                    let heard: Vec<u32> =
                        network.programs()[owned].iter().map(|p| p.heard).collect();
                    (
                        heard,
                        network.metrics().clone(),
                        network.ledger().clone(),
                        network.halted_count(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    let spliced: Vec<u32> = per_rank
        .iter_mut()
        .flat_map(|(heard, _, _, _)| heard.drain(..))
        .collect();
    per_rank[0].0 = spliced;
    per_rank
}

#[test]
fn degenerate_graphs_are_tcp_invariant_with_empty_ranks() {
    for (name, graph) in degenerate_graphs() {
        let n = graph.node_count();
        let reference = in_process_run(&graph, NetworkConfig::with_seed(17));
        // world 2 covers `world − 1 = 1`; world 4 leaves rank 3 empty for
        // n ∈ {1, 2, 3} and covers `world ± 1` at n = 3 and n = 5.
        for world in [2, 4] {
            for shards in [1, 8] {
                for (rank, (heard, metrics, ledger, halted)) in
                    tcp_run(&graph, world, shards).into_iter().enumerate()
                {
                    let where_ = format!("{name}: world {world}, {shards} shards, rank {rank}");
                    if rank == 0 {
                        assert_eq!(reference.0, heard, "{where_}: outputs differ");
                    }
                    assert_eq!(reference.1, metrics, "{where_}: metrics differ");
                    assert_eq!(reference.2, ledger, "{where_}: ledgers differ");
                    assert_eq!(halted, n, "{where_}: wrong halted count");
                }
            }
        }
    }
}
