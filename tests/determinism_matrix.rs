//! Determinism matrix: every LOCAL algorithm in `algorithms/` runs on three
//! workload families with shard counts 1, 2 and 8 — under both trace modes,
//! so the serial *and* the parallel receiver-sharded round barrier are each
//! exercised — and every observable of the execution — program outputs,
//! per-round/per-node message metrics, the per-edge/per-round message
//! ledger, and the full message trace — must be bit-identical to the
//! sequential (1-shard) engine. The `baselines/` constructions are covered by replay
//! determinism: they drive their own deterministic processes (they do not
//! run on the `Network`), so the property to pin down is that equal seeds
//! reproduce equal outcomes regardless of what the engine is doing.

use freelunch::algorithms::{
    is_maximal_independent_set, is_maximal_matching, is_proper_coloring, BallGathering,
    LocalLeaderElection, LubyMis, MaximalMatching, RandomizedColoring,
};
use freelunch::baselines::{
    direct_flooding, gossip_broadcast, BaswanaSen, ClusterSpanner, GreedySpanner,
};
use freelunch::core::planner::{PathChoice, PlanReport, SchemePlanner};
use freelunch::core::spanner_api::SpannerAlgorithm;
use freelunch::graph::generators::{
    barabasi_albert, sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
};
use freelunch::graph::{MultiGraph, NodeId};
use freelunch::runtime::transport::{MockTransport, TcpConfig, TcpTransport, WireCodec};
use freelunch::runtime::{
    Context, Envelope, ExecutionMetrics, FaultPlan, InitialKnowledge, MessageLedger, Network,
    NetworkConfig, NodeProgram, Scheduling, Trace, TraceMode, DEFAULT_CHUNK_SIZE,
};
use std::fmt::Debug;
use std::net::{SocketAddr, TcpListener};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn workloads() -> Vec<(&'static str, MultiGraph)> {
    vec![
        (
            "sparse-er",
            sparse_connected_erdos_renyi(&GeneratorConfig::new(96, 11), 6.0).unwrap(),
        ),
        (
            "scale-free",
            barabasi_albert(&GeneratorConfig::new(96, 12), 3).unwrap(),
        ),
        (
            "communities",
            sparse_planted_partition(&GeneratorConfig::new(96, 13), 4, 8.0, 1.0).unwrap(),
        ),
    ]
}

/// Runs `factory`'s program under every shard count and asserts that
/// outputs, metrics and traces all match the sequential execution exactly.
/// Returns the sequential outputs for algorithm-specific validation.
fn assert_shard_invariant<P, O>(
    graph: &MultiGraph,
    seed: u64,
    budget: u32,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O,
    label: &str,
) -> Vec<O>
where
    P: NodeProgram,
    O: PartialEq + Debug,
{
    // Both trace modes matter: `Full` pins the serial barrier (and the
    // trace itself), `Off` pins the parallel receiver-sharded barrier the
    // untraced hot path uses. Outputs, metrics and ledger must agree across
    // *all* (mode × shard count) combinations; traces are compared within
    // the Full mode.
    let mut reference: Option<(Vec<O>, ExecutionMetrics, MessageLedger)> = None;
    let mut trace_reference: Option<Trace> = None;
    for trace_mode in [TraceMode::Full, TraceMode::Off] {
        for shards in SHARD_COUNTS {
            let config = NetworkConfig::with_seed(seed)
                .traced(100_000)
                .trace_mode(trace_mode)
                .sharded(shards);
            let mut network = Network::new(graph, config, factory).unwrap();
            network.run_until_halt(budget).unwrap_or_else(|e| {
                panic!("{label}: did not halt at {shards} shards ({trace_mode:?}): {e}")
            });
            let outputs: Vec<O> = network.programs().iter().map(&extract).collect();
            let metrics = network.metrics().clone();
            let ledger = network.ledger().clone();
            let where_ = format!("{shards} shards ({trace_mode:?})");
            match &reference {
                None => reference = Some((outputs, metrics, ledger)),
                Some((ref_outputs, ref_metrics, ref_ledger)) => {
                    assert_eq!(ref_outputs, &outputs, "{label}: outputs differ at {where_}");
                    assert_eq!(
                        ref_metrics, &metrics,
                        "{label}: message metrics differ at {where_}"
                    );
                    assert_eq!(
                        ref_ledger, &ledger,
                        "{label}: message ledgers differ at {where_}"
                    );
                }
            }
            if trace_mode == TraceMode::Full {
                let trace = network.trace().clone();
                match &trace_reference {
                    None => trace_reference = Some(trace),
                    Some(ref_trace) => {
                        assert_eq!(ref_trace, &trace, "{label}: traces differ at {where_}")
                    }
                }
            }
        }
    }
    reference.expect("at least one shard count ran").0
}

#[test]
fn luby_mis_is_shard_invariant_and_valid() {
    for (name, graph) in workloads() {
        let states = assert_shard_invariant(
            &graph,
            1,
            300,
            |_, knowledge| LubyMis::new(knowledge.degree()),
            LubyMis::state,
            &format!("luby-mis/{name}"),
        );
        assert!(is_maximal_independent_set(&graph, &states), "{name}");
    }
}

#[test]
fn randomized_coloring_is_shard_invariant_and_valid() {
    for (name, graph) in workloads() {
        let colors = assert_shard_invariant(
            &graph,
            2,
            400,
            |_, knowledge| RandomizedColoring::new(knowledge.degree()),
            RandomizedColoring::color,
            &format!("coloring/{name}"),
        );
        assert!(is_proper_coloring(&graph, &colors), "{name}");
    }
}

#[test]
fn ball_gathering_is_shard_invariant() {
    for (name, graph) in workloads() {
        assert_shard_invariant(
            &graph,
            3,
            50,
            |node, _| BallGathering::new(node, 2),
            BallGathering::known_ids,
            &format!("ball-gathering/{name}"),
        );
    }
}

#[test]
fn leader_election_is_shard_invariant() {
    for (name, graph) in workloads() {
        assert_shard_invariant(
            &graph,
            4,
            50,
            |node, _| LocalLeaderElection::new(node, 2),
            LocalLeaderElection::leader,
            &format!("leader/{name}"),
        );
    }
}

#[test]
fn maximal_matching_is_shard_invariant_and_valid() {
    for (name, graph) in workloads() {
        let matched = assert_shard_invariant(
            &graph,
            5,
            300,
            |_, _| MaximalMatching::new(),
            MaximalMatching::matched_over,
            &format!("matching/{name}"),
        );
        assert!(is_maximal_matching(&graph, &matched), "{name}");
    }
}

/// A parity-pattern probe for the double-buffered mailboxes: every node
/// broadcasts only in odd rounds, so inboxes must be non-empty exactly in
/// even rounds. A stale message leaking from a reused (but undrained)
/// mailbox buffer would surface as a non-empty inbox in an odd round — the
/// program asserts the exact expected inbox size every round, across many
/// rounds, which also pins down that messages are delivered exactly once.
struct ParityPulse {
    rounds: u32,
    deliveries: u64,
}

impl NodeProgram for ParityPulse {
    type Message = u32;

    fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[Envelope<u32>]) {
        let round = ctx.round();
        if round % 2 == 1 {
            assert!(
                inbox.is_empty(),
                "node {} saw {} stale message(s) in odd round {round}",
                ctx.node(),
                inbox.len()
            );
            ctx.broadcast(round);
        } else {
            assert_eq!(
                inbox.len(),
                ctx.degree(),
                "node {} expected one message per incident edge in even round {round}",
                ctx.node()
            );
            for envelope in inbox {
                assert_eq!(envelope.payload, round - 1, "message from a wrong round");
            }
            self.deliveries += inbox.len() as u64;
        }
        if round >= self.rounds {
            ctx.halt();
        }
    }
}

#[test]
fn mailboxes_are_fully_drained_between_rounds() {
    for (name, graph) in workloads() {
        let mut reference: Option<Vec<u64>> = None;
        for shards in SHARD_COUNTS {
            let config = NetworkConfig::with_seed(6).sharded(shards);
            let mut network = Network::new(&graph, config, |_, _| ParityPulse {
                rounds: 8,
                deliveries: 0,
            })
            .unwrap();
            network.run_until_halt(9).unwrap();
            // Four odd-round broadcast waves of 2m messages each, every one
            // delivered exactly once.
            let m = graph.edge_count() as u64;
            assert_eq!(network.cost().messages, 4 * 2 * m, "{name}/{shards}");
            let deliveries: Vec<u64> = network
                .into_programs()
                .into_iter()
                .map(|p| p.deliveries)
                .collect();
            assert_eq!(deliveries.iter().sum::<u64>(), 4 * 2 * m, "{name}/{shards}");
            match &reference {
                None => reference = Some(deliveries),
                Some(expected) => {
                    assert_eq!(expected, &deliveries, "{name}: differs at {shards} shards")
                }
            }
        }
    }
}

#[test]
fn trace_mode_off_changes_no_other_observable() {
    for (name, graph) in workloads() {
        for shards in SHARD_COUNTS {
            let run = |mode: TraceMode| {
                let config = NetworkConfig::with_seed(8)
                    .traced(100_000)
                    .trace_mode(mode)
                    .sharded(shards);
                let mut network = Network::new(&graph, config, |_, knowledge| {
                    LubyMis::new(knowledge.degree())
                })
                .unwrap();
                network.run_until_halt(300).unwrap();
                let states: Vec<_> = network.programs().iter().map(LubyMis::state).collect();
                (
                    states,
                    network.metrics().clone(),
                    network.ledger().clone(),
                    network.trace().total(),
                )
            };
            let full = run(TraceMode::Full);
            let off = run(TraceMode::Off);
            assert_eq!(full.0, off.0, "{name}/{shards}: outputs differ");
            assert_eq!(full.1, off.1, "{name}/{shards}: metrics differ");
            assert_eq!(full.2, off.2, "{name}/{shards}: ledgers differ");
            // The trace itself is the one observable TraceMode governs.
            assert_eq!(full.3, full.1.total_messages(), "{name}/{shards}");
            assert_eq!(off.3, 0, "{name}/{shards}");
        }
    }
}

/// One full observable set of an execution, for cross-backend comparison.
type Observables<O> = (Vec<O>, ExecutionMetrics, MessageLedger);

/// Runs `factory`'s program on the in-process backend (untraced — the wire
/// backends cannot trace).
fn in_process_run<P, O>(
    graph: &MultiGraph,
    seed: u64,
    budget: u32,
    shards: usize,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O,
) -> Observables<O>
where
    P: NodeProgram,
    O: PartialEq + Debug,
{
    let config = NetworkConfig::with_seed(seed).sharded(shards);
    let mut network = Network::new(graph, config, factory).unwrap();
    network.run_until_halt(budget).unwrap();
    let outputs = network.programs().iter().map(extract).collect();
    (outputs, network.metrics().clone(), network.ledger().clone())
}

/// Runs the same execution as a two-process group over localhost TCP: two
/// `Network` instances (one per rank, in threads), each stepping its owned
/// half of the nodes, exchanging one frame per peer per round. Returns the
/// spliced outputs plus *both* ranks' metrics/ledgers — the symmetric stats
/// exchange must leave every rank with the identical global view.
fn tcp_run<P, O>(
    graph: &MultiGraph,
    seed: u64,
    budget: u32,
    shards: usize,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy + Send + Sync,
    extract: impl Fn(&P) -> O + Copy + Send + Sync,
) -> Vec<Observables<O>>
where
    P: NodeProgram,
    P::Message: WireCodec,
    O: PartialEq + Debug + Send,
{
    const WORLD: usize = 2;
    // Bind every rank's listener first (port 0 = OS-assigned), so the
    // rendezvous has no port race by construction.
    let listeners: Vec<TcpListener> = (0..WORLD)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<SocketAddr> = listeners
        .iter()
        .map(|listener| listener.local_addr().unwrap())
        .collect();
    let mut per_rank: Vec<Observables<O>> = std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let config = TcpConfig::new(rank, peers.clone());
                scope.spawn(move || {
                    let transport = TcpTransport::with_listener(listener, &config).unwrap();
                    let mut network = Network::with_transport(
                        graph,
                        NetworkConfig::with_seed(seed).sharded(shards),
                        FaultPlan::none(),
                        transport,
                        factory,
                    )
                    .unwrap();
                    network.run_until_halt(budget).unwrap();
                    let owned = network.owned_nodes();
                    let outputs: Vec<O> = network.programs()[owned].iter().map(extract).collect();
                    (outputs, network.metrics().clone(), network.ledger().clone())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    // Owned ranges are ascending and contiguous, so concatenating the
    // per-rank outputs in rank order reassembles the full node order.
    let spliced: Vec<O> = per_rank
        .iter_mut()
        .flat_map(|(outputs, _, _)| outputs.drain(..))
        .collect();
    per_rank[0].0 = spliced;
    per_rank
}

/// The cross-backend identity contract of `docs/TRANSPORT.md`: the same
/// program + workload + seed produces bit-identical outputs,
/// [`ExecutionMetrics`] and [`MessageLedger`] on the in-process backend (at
/// every shard count), on the wire-faithful mock (every payload
/// encode/decoded), and on a two-rank TCP execution over localhost (where
/// additionally *both* ranks must hold the identical global view).
fn assert_backend_invariant<P, O>(
    graph: &MultiGraph,
    seed: u64,
    budget: u32,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy + Send + Sync,
    extract: impl Fn(&P) -> O + Copy + Send + Sync,
    label: &str,
) where
    P: NodeProgram,
    P::Message: WireCodec,
    O: PartialEq + Debug + Send,
{
    let (ref_outputs, ref_metrics, ref_ledger) =
        in_process_run(graph, seed, budget, 1, factory, extract);
    for shards in SHARD_COUNTS {
        let config = NetworkConfig::with_seed(seed).sharded(shards);
        let mut mock_network = Network::with_transport(
            graph,
            config,
            FaultPlan::none(),
            MockTransport::new(),
            factory,
        )
        .unwrap();
        mock_network.run_until_halt(budget).unwrap();
        let mock_outputs: Vec<O> = mock_network.programs().iter().map(extract).collect();
        assert_eq!(
            ref_outputs, mock_outputs,
            "{label}: mock outputs differ at {shards} shards"
        );
        assert_eq!(
            &ref_metrics,
            mock_network.metrics(),
            "{label}: mock metrics differ at {shards} shards"
        );
        assert_eq!(
            &ref_ledger,
            mock_network.ledger(),
            "{label}: mock ledger differs at {shards} shards"
        );

        for (rank, (outputs, metrics, ledger)) in
            tcp_run(graph, seed, budget, shards, factory, extract)
                .into_iter()
                .enumerate()
        {
            if rank == 0 {
                assert_eq!(
                    ref_outputs, outputs,
                    "{label}: TCP outputs differ at {shards} shards"
                );
            }
            assert_eq!(
                ref_metrics, metrics,
                "{label}: TCP rank {rank} metrics differ at {shards} shards"
            );
            assert_eq!(
                ref_ledger, ledger,
                "{label}: TCP rank {rank} ledger differs at {shards} shards"
            );
        }
    }
}

#[test]
fn luby_mis_is_backend_invariant() {
    for (name, graph) in workloads() {
        assert_backend_invariant(
            &graph,
            1,
            300,
            |_, knowledge| LubyMis::new(knowledge.degree()),
            LubyMis::state,
            &format!("luby-mis/{name}"),
        );
    }
}

#[test]
fn randomized_coloring_is_backend_invariant() {
    for (name, graph) in workloads() {
        assert_backend_invariant(
            &graph,
            2,
            400,
            |_, knowledge| RandomizedColoring::new(knowledge.degree()),
            RandomizedColoring::color,
            &format!("coloring/{name}"),
        );
    }
}

#[test]
fn ball_gathering_is_backend_invariant() {
    // Variable-length `Vec<u32>` payloads: the sizing law (4 bytes per
    // token) is what keeps the byte columns identical across backends.
    for (name, graph) in workloads() {
        assert_backend_invariant(
            &graph,
            3,
            50,
            |node, _| BallGathering::new(node, 2),
            BallGathering::known_ids,
            &format!("ball-gathering/{name}"),
        );
    }
}

#[test]
fn maximal_matching_is_backend_invariant() {
    for (name, graph) in workloads() {
        assert_backend_invariant(
            &graph,
            5,
            300,
            |_, _| MaximalMatching::new(),
            MaximalMatching::matched_over,
            &format!("matching/{name}"),
        );
    }
}

#[test]
fn neutral_mock_reproduces_the_canonical_trace() {
    // The mock supports tracing (it delivers serially in canonical order),
    // so with no disturbances even the *trace* must be bit-identical to the
    // in-process serial barrier — the strongest form of wire-faithfulness.
    for (name, graph) in workloads() {
        let run_traced = |mock: bool| {
            let config = NetworkConfig::with_seed(21).traced(100_000);
            let factory =
                |_: NodeId, knowledge: &InitialKnowledge| LubyMis::new(knowledge.degree());
            let trace = if mock {
                let mut network = Network::with_transport(
                    &graph,
                    config,
                    FaultPlan::none(),
                    MockTransport::new(),
                    factory,
                )
                .unwrap();
                network.run_until_halt(300).unwrap();
                network.trace().clone()
            } else {
                let mut network = Network::new(&graph, config, factory).unwrap();
                network.run_until_halt(300).unwrap();
                network.trace().clone()
            };
            trace
        };
        assert_eq!(run_traced(false), run_traced(true), "trace differs: {name}");
    }
}

/// The planner row of the matrix: a [`SchemePlanner`] decision and the full
/// self-auditing [`PlanReport`] are functions of (graph, seed) only — the
/// engine's shard count and trace mode must not leak into them, even when
/// the report carries an engine-measured direct ledger from that very
/// engine configuration. (The cross-*backend* half of this contract lives
/// in `tests/planner_matrix.rs`.)
#[test]
fn planner_reports_are_shard_and_trace_invariant() {
    let planner = SchemePlanner::new(2).unwrap();
    let second = ClusterSpanner::new(1).unwrap();
    for (name, graph) in workloads() {
        let plan = planner.plan_with_second_stage(&graph, &second).unwrap();
        // All three 96-node sparse families sit deep in the direct regime.
        assert_eq!(plan.decision, PathChoice::Direct, "{name}");
        let mut reference: Option<PlanReport> = None;
        for trace_mode in [TraceMode::Full, TraceMode::Off] {
            for shards in SHARD_COUNTS {
                let config = NetworkConfig::with_seed(9)
                    .traced(100_000)
                    .trace_mode(trace_mode)
                    .sharded(shards);
                let mut network =
                    Network::new(&graph, config, |node, _| BallGathering::new(node, 2)).unwrap();
                network.run_until_halt(50).unwrap();
                let mut report = plan.execute(&graph, 9, &second).unwrap();
                report.attach_engine_direct(network.ledger().clone());
                let where_ = format!("{name}: {shards} shards ({trace_mode:?})");
                match &reference {
                    None => reference = Some(report),
                    Some(expected) => {
                        assert_eq!(expected, &report, "{where_}: report differs");
                        assert_eq!(
                            format!("{expected:?}"),
                            format!("{report:?}"),
                            "{where_}: report rendering differs"
                        );
                    }
                }
            }
        }
    }
}

/// `SCHED_PARITY_SMOKE=1` shrinks the scheduling-parity grid (one
/// workload, one shard count, one chunk size) for quick CI signal; the
/// full grid runs under plain `cargo test`.
fn sched_smoke() -> bool {
    std::env::var_os("SCHED_PARITY_SMOKE").is_some()
}

/// The scheduling-parity rows of the matrix: the work-stealing scheduler
/// (`Scheduling::Dynamic`, the default) and the static contiguous shard
/// partition (`Scheduling::Static`, the pre-stealing engine) must both be
/// bit-identical to the sequential engine — outputs, metrics, ledgers and
/// traces — at every shard count and chunk size. The 7-node chunk forces
/// real stealing (≈14 chunks race between the workers at n = 96); the
/// default chunk collapses to one chunk per worker, pinning the
/// boundary case where dynamic degenerates to the static partition.
fn assert_sched_parity<P, O>(
    graph: &MultiGraph,
    seed: u64,
    budget: u32,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O,
    label: &str,
) where
    P: NodeProgram,
    O: PartialEq + Debug,
{
    let shard_counts: &[usize] = if sched_smoke() { &[2] } else { &SHARD_COUNTS };
    let chunk_sizes: &[usize] = if sched_smoke() {
        &[7]
    } else {
        &[7, DEFAULT_CHUNK_SIZE]
    };
    for trace_mode in [TraceMode::Full, TraceMode::Off] {
        let run = |shards: usize, sched: Scheduling, chunk: usize| {
            let config = NetworkConfig::with_seed(seed)
                .traced(100_000)
                .trace_mode(trace_mode)
                .sharded(shards)
                .scheduling(sched)
                .chunk_size(chunk);
            let mut network = Network::new(graph, config, factory).unwrap();
            network.run_until_halt(budget).unwrap();
            let outputs: Vec<O> = network.programs().iter().map(&extract).collect();
            (
                outputs,
                network.metrics().clone(),
                network.ledger().clone(),
                network.trace().clone(),
            )
        };
        let serial = run(1, Scheduling::Dynamic, DEFAULT_CHUNK_SIZE);
        for &shards in shard_counts {
            for sched in [Scheduling::Dynamic, Scheduling::Static] {
                for &chunk in chunk_sizes {
                    let parallel = run(shards, sched, chunk);
                    let where_ = format!(
                        "{label}: {shards} shards, {sched:?}, chunk {chunk} ({trace_mode:?})"
                    );
                    assert_eq!(serial.0, parallel.0, "{where_}: outputs differ");
                    assert_eq!(serial.1, parallel.1, "{where_}: metrics differ");
                    assert_eq!(serial.2, parallel.2, "{where_}: ledgers differ");
                    assert_eq!(serial.3, parallel.3, "{where_}: traces differ");
                }
            }
        }
    }
}

/// One workload in smoke mode, all three in the full grid.
fn sched_parity_workloads() -> Vec<(&'static str, MultiGraph)> {
    let mut families = workloads();
    if sched_smoke() {
        families.truncate(1);
    }
    families
}

#[test]
fn luby_mis_is_scheduling_invariant() {
    for (name, graph) in sched_parity_workloads() {
        assert_sched_parity(
            &graph,
            1,
            300,
            |_, knowledge| LubyMis::new(knowledge.degree()),
            LubyMis::state,
            &format!("luby-mis/{name}"),
        );
    }
}

#[test]
fn randomized_coloring_is_scheduling_invariant() {
    for (name, graph) in sched_parity_workloads() {
        assert_sched_parity(
            &graph,
            2,
            400,
            |_, knowledge| RandomizedColoring::new(knowledge.degree()),
            RandomizedColoring::color,
            &format!("coloring/{name}"),
        );
    }
}

#[test]
fn ball_gathering_is_scheduling_invariant() {
    for (name, graph) in sched_parity_workloads() {
        assert_sched_parity(
            &graph,
            3,
            50,
            |node, _| BallGathering::new(node, 2),
            BallGathering::known_ids,
            &format!("ball-gathering/{name}"),
        );
    }
}

#[test]
fn maximal_matching_is_scheduling_invariant() {
    for (name, graph) in sched_parity_workloads() {
        assert_sched_parity(
            &graph,
            5,
            300,
            |_, _| MaximalMatching::new(),
            MaximalMatching::matched_over,
            &format!("matching/{name}"),
        );
    }
}

#[test]
fn baseline_constructions_replay_deterministically() {
    for (name, graph) in workloads() {
        let a = BaswanaSen::new(2).unwrap().construct(&graph, 7).unwrap();
        let b = BaswanaSen::new(2).unwrap().construct(&graph, 7).unwrap();
        assert_eq!(a.edges, b.edges, "baswana-sen/{name}");
        assert_eq!(a.cost, b.cost, "baswana-sen/{name}");

        let a = GreedySpanner::new(3).unwrap().construct(&graph, 7).unwrap();
        let b = GreedySpanner::new(3).unwrap().construct(&graph, 7).unwrap();
        assert_eq!(a.edges, b.edges, "greedy/{name}");

        let a = gossip_broadcast(&graph, 2, 7).unwrap();
        let b = gossip_broadcast(&graph, 2, 7).unwrap();
        assert_eq!(a, b, "gossip/{name}");

        let a = direct_flooding(&graph, 2).unwrap();
        let b = direct_flooding(&graph, 2).unwrap();
        assert_eq!(a, b, "flooding/{name}");
    }
}
