//! Determinism matrix: every LOCAL algorithm in `algorithms/` runs on three
//! workload families with shard counts 1, 2 and 8, and every observable of
//! the execution — program outputs, per-round/per-node message metrics, the
//! per-edge/per-round message ledger, and the full message trace — must be
//! bit-identical to the sequential (1-shard) engine. The `baselines/` constructions are covered by replay
//! determinism: they drive their own deterministic processes (they do not
//! run on the `Network`), so the property to pin down is that equal seeds
//! reproduce equal outcomes regardless of what the engine is doing.

use freelunch::algorithms::{
    is_maximal_independent_set, is_maximal_matching, is_proper_coloring, BallGathering,
    LocalLeaderElection, LubyMis, MaximalMatching, RandomizedColoring,
};
use freelunch::baselines::{direct_flooding, gossip_broadcast, BaswanaSen, GreedySpanner};
use freelunch::core::spanner_api::SpannerAlgorithm;
use freelunch::graph::generators::{
    barabasi_albert, sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
};
use freelunch::graph::{MultiGraph, NodeId};
use freelunch::runtime::{
    ExecutionMetrics, InitialKnowledge, MessageLedger, Network, NetworkConfig, NodeProgram, Trace,
};
use std::fmt::Debug;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn workloads() -> Vec<(&'static str, MultiGraph)> {
    vec![
        (
            "sparse-er",
            sparse_connected_erdos_renyi(&GeneratorConfig::new(96, 11), 6.0).unwrap(),
        ),
        (
            "scale-free",
            barabasi_albert(&GeneratorConfig::new(96, 12), 3).unwrap(),
        ),
        (
            "communities",
            sparse_planted_partition(&GeneratorConfig::new(96, 13), 4, 8.0, 1.0).unwrap(),
        ),
    ]
}

/// Runs `factory`'s program under every shard count and asserts that
/// outputs, metrics and traces all match the sequential execution exactly.
/// Returns the sequential outputs for algorithm-specific validation.
fn assert_shard_invariant<P, O>(
    graph: &MultiGraph,
    seed: u64,
    budget: u32,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O,
    label: &str,
) -> Vec<O>
where
    P: NodeProgram,
    O: PartialEq + Debug,
{
    let mut reference: Option<(Vec<O>, ExecutionMetrics, Trace, MessageLedger)> = None;
    for shards in SHARD_COUNTS {
        let config = NetworkConfig::with_seed(seed)
            .traced(100_000)
            .sharded(shards);
        let mut network = Network::new(graph, config, factory).unwrap();
        network
            .run_until_halt(budget)
            .unwrap_or_else(|e| panic!("{label}: did not halt at {shards} shards: {e}"));
        let outputs: Vec<O> = network.programs().iter().map(&extract).collect();
        let metrics = network.metrics().clone();
        let trace = network.trace().clone();
        let ledger = network.ledger().clone();
        match &reference {
            None => reference = Some((outputs, metrics, trace, ledger)),
            Some((ref_outputs, ref_metrics, ref_trace, ref_ledger)) => {
                assert_eq!(
                    ref_outputs, &outputs,
                    "{label}: outputs differ at {shards} shards"
                );
                assert_eq!(
                    ref_metrics, &metrics,
                    "{label}: message metrics differ at {shards} shards"
                );
                assert_eq!(
                    ref_trace, &trace,
                    "{label}: traces differ at {shards} shards"
                );
                assert_eq!(
                    ref_ledger, &ledger,
                    "{label}: message ledgers differ at {shards} shards"
                );
            }
        }
    }
    reference.expect("at least one shard count ran").0
}

#[test]
fn luby_mis_is_shard_invariant_and_valid() {
    for (name, graph) in workloads() {
        let states = assert_shard_invariant(
            &graph,
            1,
            300,
            |_, knowledge| LubyMis::new(knowledge.degree()),
            LubyMis::state,
            &format!("luby-mis/{name}"),
        );
        assert!(is_maximal_independent_set(&graph, &states), "{name}");
    }
}

#[test]
fn randomized_coloring_is_shard_invariant_and_valid() {
    for (name, graph) in workloads() {
        let colors = assert_shard_invariant(
            &graph,
            2,
            400,
            |_, knowledge| RandomizedColoring::new(knowledge.degree()),
            RandomizedColoring::color,
            &format!("coloring/{name}"),
        );
        assert!(is_proper_coloring(&graph, &colors), "{name}");
    }
}

#[test]
fn ball_gathering_is_shard_invariant() {
    for (name, graph) in workloads() {
        assert_shard_invariant(
            &graph,
            3,
            50,
            |node, _| BallGathering::new(node, 2),
            BallGathering::known_ids,
            &format!("ball-gathering/{name}"),
        );
    }
}

#[test]
fn leader_election_is_shard_invariant() {
    for (name, graph) in workloads() {
        assert_shard_invariant(
            &graph,
            4,
            50,
            |node, _| LocalLeaderElection::new(node, 2),
            LocalLeaderElection::leader,
            &format!("leader/{name}"),
        );
    }
}

#[test]
fn maximal_matching_is_shard_invariant_and_valid() {
    for (name, graph) in workloads() {
        let matched = assert_shard_invariant(
            &graph,
            5,
            300,
            |_, _| MaximalMatching::new(),
            MaximalMatching::matched_over,
            &format!("matching/{name}"),
        );
        assert!(is_maximal_matching(&graph, &matched), "{name}");
    }
}

#[test]
fn baseline_constructions_replay_deterministically() {
    for (name, graph) in workloads() {
        let a = BaswanaSen::new(2).unwrap().construct(&graph, 7).unwrap();
        let b = BaswanaSen::new(2).unwrap().construct(&graph, 7).unwrap();
        assert_eq!(a.edges, b.edges, "baswana-sen/{name}");
        assert_eq!(a.cost, b.cost, "baswana-sen/{name}");

        let a = GreedySpanner::new(3).unwrap().construct(&graph, 7).unwrap();
        let b = GreedySpanner::new(3).unwrap().construct(&graph, 7).unwrap();
        assert_eq!(a.edges, b.edges, "greedy/{name}");

        let a = gossip_broadcast(&graph, 2, 7).unwrap();
        let b = gossip_broadcast(&graph, 2, 7).unwrap();
        assert_eq!(a, b, "gossip/{name}");

        let a = direct_flooding(&graph, 2).unwrap();
        let b = direct_flooding(&graph, 2).unwrap();
        assert_eq!(a, b, "flooding/{name}");
    }
}
