//! Intra-repo link checker for the documentation: every relative markdown
//! link in `README.md`, `ARCHITECTURE.md` and `docs/` must point at a file
//! (or directory) that actually exists, so the docs cannot silently rot as
//! the tree moves. CI runs this test in its docs job step.

use std::path::{Path, PathBuf};

/// Extracts the targets of inline markdown links (`[text](target)`) from
/// `source`. Deliberately simple: scans for `](…)` pairs, which covers
/// every link style used in this repository.
fn link_targets(source: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut i = 0;
    while let Some(offset) = source[i..].find("](") {
        let start = i + offset + 2;
        let Some(len) = source[start..].find(')') else {
            break;
        };
        targets.push(source[start..start + len].to_string());
        i = start + len;
    }
    targets
}

/// Returns the broken relative links of one markdown file as
/// `(target, resolved_path)` pairs.
fn broken_links(file: &Path, repo_root: &Path) -> Vec<(String, PathBuf)> {
    let source = std::fs::read_to_string(file)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
    let base = file.parent().unwrap_or(repo_root);
    let mut broken = Vec::new();
    for target in link_targets(&source) {
        // External links, mail addresses and intra-document anchors are out
        // of scope; so are rustdoc-style links without a path component.
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
            || target.starts_with('#')
            || target.is_empty()
        {
            continue;
        }
        // Drop a trailing `#section` anchor before resolving.
        let path_part = target.split('#').next().unwrap_or(&target);
        if path_part.is_empty() {
            continue;
        }
        let resolved = base.join(path_part);
        if !resolved.exists() {
            broken.push((target, resolved));
        }
    }
    broken
}

#[test]
fn intra_repo_doc_links_resolve() {
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![
        repo_root.join("README.md"),
        repo_root.join("ARCHITECTURE.md"),
    ];
    let docs_dir = repo_root.join("docs");
    assert!(
        docs_dir.is_dir(),
        "docs/ directory is missing — METRICS.md lives there"
    );
    for entry in std::fs::read_dir(&docs_dir).expect("docs/ is readable") {
        let path = entry.expect("docs/ entry is readable").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }

    let mut failures = Vec::new();
    for file in &files {
        for (target, resolved) in broken_links(file, &repo_root) {
            failures.push(format!(
                "{}: link `{}` resolves to missing {}",
                file.display(),
                target,
                resolved.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "broken intra-repo documentation links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn link_extraction_handles_the_markdown_shapes_in_use() {
    let sample = "See [a](docs/METRICS.md), [b](ARCHITECTURE.md#crate-map) and \
                  [c](https://example.com/x) plus [anchor](#section).";
    assert_eq!(
        link_targets(sample),
        vec![
            "docs/METRICS.md".to_string(),
            "ARCHITECTURE.md#crate-map".to_string(),
            "https://example.com/x".to_string(),
            "#section".to_string(),
        ]
    );
}
