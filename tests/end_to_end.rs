//! Cross-crate integration tests: the full pipeline from graph generation
//! through spanner construction to message-reduced simulation of LOCAL
//! algorithms.

use freelunch::algorithms::{
    is_maximal_independent_set, is_proper_coloring, BallGathering, LubyMis, RandomizedColoring,
};
use freelunch::baselines::{direct_flooding, gossip_broadcast, BaswanaSen};
use freelunch::core::reduction::scheme::SamplerScheme;
use freelunch::core::reduction::simulate::simulate_with_spanner;
use freelunch::core::reduction::tlocal::t_local_broadcast;
use freelunch::core::sampler::{ConstantPolicy, Sampler, SamplerParams};
use freelunch::core::spanner_api::SpannerAlgorithm;
use freelunch::graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};
use freelunch::graph::spanner_check::verify_edge_stretch;
use freelunch::runtime::{Network, NetworkConfig};

fn practical_params(k: u32) -> SamplerParams {
    SamplerParams::with_constants(
        k,
        7,
        ConstantPolicy::Practical {
            target_factor: 4.0,
            query_factor: 4.0,
        },
    )
    .expect("valid parameters")
}

#[test]
fn sampler_spanner_supports_correct_t_local_broadcast() {
    let graph = connected_erdos_renyi(&GeneratorConfig::new(200, 3), 0.2).unwrap();
    let params = practical_params(2);
    let outcome = Sampler::new(params).run(&graph, 9).unwrap();

    // The spanner respects the stretch bound …
    let stretch = verify_edge_stretch(&graph, outcome.spanner_edges().iter().copied()).unwrap();
    assert!(stretch.satisfies(params.stretch_bound()));

    // … so flooding it for stretch·t rounds solves the t-local broadcast.
    let t = 2;
    let broadcast = t_local_broadcast(
        &graph,
        outcome.spanner_edges().iter().copied(),
        t,
        params.stretch_bound(),
    )
    .unwrap();
    assert_eq!(broadcast.coverage_violations(&graph, t).unwrap(), 0);
}

#[test]
fn scheme_beats_flooding_on_dense_graphs_and_gossip_on_rounds() {
    // The message gap opens on dense graphs (m ≫ n): use a clique, the
    // extreme of the regime the paper targets.
    let graph = complete_graph(&GeneratorConfig::new(256, 5)).unwrap();
    let t = 2;
    let scheme = SamplerScheme::with_constants(
        2,
        ConstantPolicy::Practical {
            target_factor: 4.0,
            query_factor: 4.0,
        },
    )
    .unwrap();
    let report = scheme.run(&graph, t, 7).unwrap();
    let flooding = direct_flooding(&graph, t).unwrap();
    let gossip = gossip_broadcast(&graph, t, 7).unwrap();

    // Fewer messages than flooding every edge of the dense graph …
    assert!(
        report.total_cost.messages < flooding.broadcast.cost.messages,
        "scheme sent {} messages, flooding {}",
        report.total_cost.messages,
        flooding.broadcast.cost.messages
    );
    // … and (unlike gossip) the rounds stay proportional to t rather than
    // growing with log n.
    assert!(gossip.completed);
    assert!(report.broadcast_cost.rounds <= u64::from(scheme.stretch() * t));
}

#[test]
fn luby_mis_and_coloring_run_on_the_runtime_and_validate() {
    let graph = connected_erdos_renyi(&GeneratorConfig::new(120, 8), 0.1).unwrap();

    let mut mis = Network::new(&graph, NetworkConfig::with_seed(1), |_, knowledge| {
        LubyMis::new(knowledge.degree())
    })
    .unwrap();
    mis.run_until_halt(300).unwrap();
    let states: Vec<_> = mis.programs().iter().map(LubyMis::state).collect();
    assert!(is_maximal_independent_set(&graph, &states));

    let mut coloring = Network::new(&graph, NetworkConfig::with_seed(2), |_, knowledge| {
        RandomizedColoring::new(knowledge.degree())
    })
    .unwrap();
    coloring.run_until_halt(400).unwrap();
    let colors: Vec<_> = coloring
        .programs()
        .iter()
        .map(RandomizedColoring::color)
        .collect();
    assert!(is_proper_coloring(&graph, &colors));
}

#[test]
fn free_lunch_simulation_preserves_outputs_and_saves_messages() {
    let graph = complete_graph(&GeneratorConfig::new(180, 4)).unwrap();
    let params = practical_params(2);
    let spanner = Sampler::new(params).run(&graph, 21).unwrap();
    let t = 2;

    let report = simulate_with_spanner(
        &graph,
        spanner.spanner_edges(),
        params.stretch_bound(),
        spanner.cost,
        t,
        NetworkConfig::with_seed(5),
        |node, _| BallGathering::new(node, t),
        |p| p.known_ids(),
        8,
    )
    .unwrap();

    assert!(
        report.outputs_match(),
        "{} ball-local mismatches",
        report.mismatches
    );
    assert!(
        report.simulated_cost.messages < report.direct_cost.messages,
        "simulated {} vs direct {}",
        report.simulated_cost.messages,
        report.direct_cost.messages
    );
}

#[test]
fn sampler_and_baswana_sen_expose_the_message_gap() {
    // The headline comparison: on a dense graph both produce valid constant-
    // stretch spanners, but only Baswana–Sen pays Ω(m) messages.
    let graph = connected_erdos_renyi(&GeneratorConfig::new(300, 6), 0.3).unwrap();
    let m = graph.edge_count() as u64;

    let sampler = Sampler::new(practical_params(2));
    let sampler_result = sampler.construct(&graph, 3).unwrap();
    let baswana = BaswanaSen::new(3).unwrap().construct(&graph, 3).unwrap();

    for result in [&sampler_result, &baswana] {
        let report = verify_edge_stretch(&graph, result.edges.iter().copied()).unwrap();
        assert!(
            report.satisfies(result.multiplicative_stretch),
            "{}",
            result.algorithm
        );
    }
    assert!(baswana.cost.messages >= m);
    assert!(
        sampler_result.cost.messages < baswana.cost.messages,
        "sampler {} vs baswana-sen {}",
        sampler_result.cost.messages,
        baswana.cost.messages
    );
}

#[test]
fn free_lunch_simulation_is_shard_invariant() {
    // The full simulation pipeline — reference execution, t-local broadcast
    // and ball-local verification — must produce the same report whether
    // the runtime steps nodes sequentially or on 4 shards.
    let graph = complete_graph(&GeneratorConfig::new(96, 10)).unwrap();
    let params = practical_params(2);
    let spanner = Sampler::new(params).run(&graph, 13).unwrap();
    let t = 2;

    let run = |shards: usize| {
        simulate_with_spanner(
            &graph,
            spanner.spanner_edges(),
            params.stretch_bound(),
            spanner.cost,
            t,
            NetworkConfig::with_seed(5).sharded(shards),
            |node, _| BallGathering::new(node, t),
            |p| p.known_ids(),
            6,
        )
        .unwrap()
    };
    let sequential = run(1);
    assert!(sequential.outputs_match());
    assert_eq!(sequential, run(4));
}

#[test]
fn deterministic_end_to_end_replay() {
    let graph = connected_erdos_renyi(&GeneratorConfig::new(100, 2), 0.2).unwrap();
    let scheme = SamplerScheme::with_constants(
        1,
        ConstantPolicy::Practical {
            target_factor: 4.0,
            query_factor: 4.0,
        },
    )
    .unwrap();
    let a = scheme.run(&graph, 2, 77).unwrap();
    let b = scheme.run(&graph, 2, 77).unwrap();
    assert_eq!(a.total_cost, b.total_cost);
    assert_eq!(a.spanner_edges, b.spanner_edges);
}
