//! The robustness flagship: algorithms × workloads × fault profiles ×
//! shard counts.
//!
//! Every LOCAL algorithm runs on every workload family under every fault
//! profile (message drop, duplication, link cuts, node crashes, delivery
//! reordering, and their combination), and the suite asserts three layers:
//!
//! 1. **Determinism** — outputs, metrics, the message ledger (including its
//!    fault-accounting column), crash state and even the error outcome are
//!    bit-identical across shard counts {1, 2, 8} at equal
//!    `(network seed, fault seed)`, extending the clean-run guarantee of
//!    `tests/determinism_matrix.rs` to adversarial executions.
//! 2. **Clean-plan identity** — the `clean` profile (an installed but empty
//!    `FaultPlan`) is byte-identical to never installing a plan at all.
//! 3. **Classification** — a per-algorithm invariant checker grades each
//!    scenario `Correct` (the full specification holds), `DegradedSafe`
//!    (safety holds but the output is incomplete — e.g. undecided or
//!    crashed nodes), or `Violated` (a safety invariant broke, e.g. two
//!    adjacent MIS members). Clean scenarios must be `Correct`; crash-only
//!    scenarios must never be `Violated` (silence cannot forge messages);
//!    broadcast must never be `Violated` under *any* profile (no fault kind
//!    can fabricate a node ID); and across the faulty grid at least one
//!    scenario must degrade — otherwise the matrix isn't testing anything.
//!
//! Set `FAULT_MATRIX_SMOKE=1` to shrink the grid (one workload, four
//! profiles) for quick CI signal; the full grid runs under plain
//! `cargo test`. To add a scenario, extend `profiles()` (a new adversity
//! shape) or add a `fault_matrix_*` test wired through `drive()` (a new
//! algorithm) — see `docs/TESTING.md`.

use freelunch::algorithms::{
    is_maximal_independent_set, is_maximal_matching, is_proper_coloring, BallGathering, LubyMis,
    MaximalMatching, MisState, RandomizedColoring,
};
use freelunch::graph::generators::{
    barabasi_albert, sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
};
use freelunch::graph::traversal::ball;
use freelunch::graph::{EdgeId, MultiGraph, NodeId};
use freelunch::runtime::transport::{MockTransport, WireCodec};
use freelunch::runtime::{
    ExecutionMetrics, FaultPlan, InitialKnowledge, MessageLedger, Network, NetworkConfig,
    NodeProgram, TraceMode,
};
use std::collections::HashSet;
use std::fmt::Debug;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Gathering horizon of the broadcast workload.
const BROADCAST_T: u32 = 2;

fn smoke() -> bool {
    std::env::var_os("FAULT_MATRIX_SMOKE").is_some()
}

/// The workload families (one in smoke mode, three in the full grid).
fn workloads() -> Vec<(&'static str, MultiGraph)> {
    let mut families = vec![(
        "sparse-er",
        sparse_connected_erdos_renyi(&GeneratorConfig::new(64, 21), 5.0).unwrap(),
    )];
    if !smoke() {
        families.push((
            "scale-free",
            barabasi_albert(&GeneratorConfig::new(64, 22), 3).unwrap(),
        ));
        families.push((
            "communities",
            sparse_planted_partition(&GeneratorConfig::new(64, 23), 4, 7.0, 1.0).unwrap(),
        ));
    }
    families
}

/// The crash schedule shared by the `crash` and `chaos` profiles: three
/// fail-stops before the first round and one mid-execution.
fn crash_schedule(n: usize) -> Vec<(NodeId, u32)> {
    vec![
        (NodeId::from_usize(n / 5), 0),
        (NodeId::from_usize(2 * n / 5), 0),
        (NodeId::from_usize(3 * n / 5), 0),
        (NodeId::from_usize(4 * n / 5), 4),
    ]
}

/// The fault profiles of the matrix, sized against the given workload.
/// Smoke mode keeps the four acceptance-criteria kinds (plus `clean`);
/// the full grid adds duplication, pure reordering and the combined chaos
/// profile.
fn profiles(graph: &MultiGraph) -> Vec<(&'static str, FaultPlan)> {
    let n = graph.node_count();
    let m = graph.edge_count();
    let crash = {
        let mut plan = FaultPlan::new(102);
        for (node, round) in crash_schedule(n) {
            plan = plan.with_crash(node, round);
        }
        plan
    };
    let link_cut = {
        // Every 7th edge is cut from the start, every 11th from round 2 —
        // both "was never there" and "died mid-execution" shapes.
        let mut plan = FaultPlan::new(103);
        for e in (0..m as u64).step_by(7) {
            plan = plan.with_link_cut(EdgeId::new(e), 0);
        }
        for e in (3..m as u64).step_by(11) {
            plan = plan.with_link_cut(EdgeId::new(e), 2);
        }
        plan
    };
    let mut all = vec![
        ("clean", FaultPlan::none()),
        ("drop", FaultPlan::new(101).with_drop_probability(0.15)),
        ("crash", crash.clone()),
        ("link-cut", link_cut.clone()),
    ];
    if !smoke() {
        all.push((
            "duplicate",
            FaultPlan::new(104).with_duplicate_probability(0.25),
        ));
        all.push(("reorder", FaultPlan::new(105).with_delivery_perturbation()));
        let mut chaos = FaultPlan::new(106)
            .with_drop_probability(0.05)
            .with_duplicate_probability(0.05)
            .with_delivery_perturbation();
        chaos.link_cuts = link_cut.link_cuts.clone();
        chaos.crashes = crash.crashes.clone();
        all.push(("chaos", chaos));
    }
    all
}

/// How an invariant checker grades one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// The algorithm's full specification holds on the whole graph.
    Correct,
    /// Safety holds but the output is incomplete (crashed, undecided or
    /// unreached nodes).
    DegradedSafe,
    /// A safety invariant broke.
    Violated,
}

/// Everything observable about one (graph, plan, seed, shards) execution.
#[derive(Debug, Clone, PartialEq)]
struct Scenario<O> {
    outputs: Vec<O>,
    metrics: ExecutionMetrics,
    ledger: MessageLedger,
    crashed: Vec<NodeId>,
    /// Stringified error if the run did not halt in budget (some faulty
    /// scenarios legitimately never converge); must itself be deterministic.
    error: Option<String>,
}

#[allow(clippy::too_many_arguments)]
fn run_scenario<P, O>(
    graph: &MultiGraph,
    plan: &FaultPlan,
    seed: u64,
    budget: u32,
    shards: usize,
    trace_mode: TraceMode,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O,
) -> Scenario<O>
where
    P: NodeProgram,
{
    let config = NetworkConfig::with_seed(seed)
        .traced(if trace_mode == TraceMode::Full {
            100_000
        } else {
            0
        })
        .trace_mode(trace_mode)
        .sharded(shards);
    let mut network = Network::with_fault_plan(graph, config, plan.clone(), factory).unwrap();
    let error = network.run_until_halt(budget).err().map(|e| e.to_string());
    Scenario {
        outputs: network.programs().iter().map(&extract).collect(),
        metrics: network.metrics().clone(),
        ledger: network.ledger().clone(),
        crashed: network.crashed_nodes(),
        error,
    }
}

/// Drives one algorithm through the whole matrix: for every workload ×
/// profile it pins cross-shard bit-identity (and the clean-plan ≡ no-plan
/// identity), then hands the reference scenario to `assess` for
/// algorithm-specific grading, collecting the verdicts.
fn drive<P, O>(
    algo: &str,
    seed: u64,
    budget: u32,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O + Copy,
    assess: impl Fn(&str, &MultiGraph, &FaultPlan, &Scenario<O>) -> Verdict,
) -> Vec<(String, String, Verdict)>
where
    P: NodeProgram,
    O: PartialEq + Debug + Clone,
{
    let mut verdicts = Vec::new();
    for (workload, graph) in workloads() {
        for (profile, plan) in profiles(&graph) {
            let label = format!("{algo}/{workload}/{profile}");
            let reference = run_scenario(
                &graph,
                &plan,
                seed,
                budget,
                SHARD_COUNTS[0],
                TraceMode::Off,
                factory,
                extract,
            );
            for &shards in &SHARD_COUNTS[1..] {
                let sharded = run_scenario(
                    &graph,
                    &plan,
                    seed,
                    budget,
                    shards,
                    TraceMode::Off,
                    factory,
                    extract,
                );
                assert_eq!(reference, sharded, "{label}: differs at {shards} shards");
            }
            if profile == "clean" {
                // An installed empty plan must be indistinguishable from no
                // plan at all.
                let config = NetworkConfig::with_seed(seed);
                let mut network = Network::new(&graph, config, factory).unwrap();
                let error = network.run_until_halt(budget).err().map(|e| e.to_string());
                let bare = Scenario {
                    outputs: network.programs().iter().map(&extract).collect(),
                    metrics: network.metrics().clone(),
                    ledger: network.ledger().clone(),
                    crashed: network.crashed_nodes(),
                    error,
                };
                assert_eq!(reference, bare, "{label}: clean plan differs from no plan");
                assert_eq!(reference.ledger.fault_totals().dropped, 0, "{label}");
            }
            let verdict = assess(&label, &graph, &plan, &reference);
            if profile == "clean" {
                assert_eq!(
                    verdict,
                    Verdict::Correct,
                    "{label}: clean run must be Correct"
                );
            }
            if profile == "crash" {
                // Crashes are pure silence: they can lose information but
                // never forge it, so safety must survive.
                assert_ne!(verdict, Verdict::Violated, "{label}: crash broke safety");
            }
            verdicts.push((workload.to_string(), profile.to_string(), verdict));
        }
    }
    // The matrix must actually bite: across the faulty profiles at least
    // one scenario degrades away from full correctness.
    assert!(
        verdicts
            .iter()
            .any(|(_, profile, verdict)| profile != "clean" && *verdict != Verdict::Correct),
        "{algo}: no fault profile perturbed the output — the matrix is vacuous"
    );
    verdicts
}

/// The nodes the plan ever crashes (the survivors are everything else).
fn crashed_set(plan: &FaultPlan) -> HashSet<usize> {
    plan.crashes.iter().map(|c| c.node.index()).collect()
}

#[test]
fn fault_matrix_mis() {
    let verdicts = drive(
        "luby-mis",
        1,
        300,
        |_, knowledge| LubyMis::new(knowledge.degree()),
        LubyMis::state,
        |label, graph, plan, scenario| {
            let states = &scenario.outputs;
            // Safety: independence. Two adjacent members violate it no
            // matter what the adversary did.
            for edge in graph.edges() {
                if states[edge.u.index()] == MisState::InSet
                    && states[edge.v.index()] == MisState::InSet
                {
                    return Verdict::Violated;
                }
            }
            let crashed = crashed_set(plan);
            if crashed.is_empty()
                && scenario.error.is_none()
                && is_maximal_independent_set(graph, states)
            {
                return Verdict::Correct;
            }
            // Independence holds; with crashes (or an unfinished run) the
            // set may legitimately be non-maximal. Live nodes must still be
            // *covered or decided* for the scenario to count as safe.
            let _ = label;
            Verdict::DegradedSafe
        },
    );
    assert!(verdicts.iter().any(|(_, p, _)| p == "drop"));
}

#[test]
fn fault_matrix_coloring() {
    drive(
        "coloring",
        2,
        400,
        |_, knowledge| RandomizedColoring::new(knowledge.degree()),
        RandomizedColoring::color,
        |_label, graph, plan, scenario| {
            let colors = &scenario.outputs;
            // Safety: no two adjacent *decided* nodes share a color.
            for edge in graph.edges() {
                let (a, b) = (colors[edge.u.index()], colors[edge.v.index()]);
                if a.is_some() && a == b {
                    return Verdict::Violated;
                }
            }
            let crashed = crashed_set(plan);
            if crashed.is_empty() && scenario.error.is_none() && is_proper_coloring(graph, colors) {
                Verdict::Correct
            } else {
                Verdict::DegradedSafe
            }
        },
    );
}

#[test]
fn fault_matrix_matching() {
    drive(
        "matching",
        3,
        150,
        |_, _| MaximalMatching::new(),
        MaximalMatching::matched_over,
        |label, graph, plan, scenario| {
            let matched = &scenario.outputs;
            // Safety: endpoint agreement. A half-married pair (one endpoint
            // believes in the edge, the other does not) is the classic
            // lost-Accept anomaly and counts as a violation.
            for (v, m) in matched.iter().enumerate() {
                if let Some(edge) = m {
                    let Ok((a, b)) = graph.endpoints(*edge) else {
                        panic!("{label}: matched over unknown edge {edge}");
                    };
                    if a.index() != v && b.index() != v {
                        return Verdict::Violated;
                    }
                    let other = if a.index() == v { b } else { a };
                    if matched[other.index()] != Some(*edge) {
                        return Verdict::Violated;
                    }
                }
            }
            let crashed = crashed_set(plan);
            if crashed.is_empty() && scenario.error.is_none() && is_maximal_matching(graph, matched)
            {
                Verdict::Correct
            } else {
                Verdict::DegradedSafe
            }
        },
    );
}

#[test]
fn fault_matrix_broadcast() {
    let verdicts = drive(
        "ball-gathering",
        4,
        BROADCAST_T + 2,
        |node, _| BallGathering::new(node, BROADCAST_T),
        BallGathering::known_ids,
        |label, graph, plan, scenario| {
            let views = &scenario.outputs;
            let frozen = graph.freeze();
            // Soundness: no fault kind can fabricate a node ID, so every
            // view must stay inside the true t-ball.
            for v in graph.nodes() {
                let truth: HashSet<u32> = ball(&frozen, v, BROADCAST_T)
                    .unwrap()
                    .into_iter()
                    .map(NodeId::raw)
                    .collect();
                for &id in &views[v.index()] {
                    if !truth.contains(&id) {
                        return Verdict::Violated;
                    }
                }
            }
            let crashed = crashed_set(plan);
            // Reach on the surviving component: tokens must still travel
            // every all-live path, so each live node's view contains at
            // least its t-ball in the crash-free induced subgraph (only
            // meaningful when messages are merely delayed by silence, i.e.
            // the plan drops nothing besides crash traffic).
            if plan.drop_probability == 0.0 && plan.link_cuts.is_empty() {
                let live_edges: Vec<EdgeId> = graph
                    .edges()
                    .filter(|e| !crashed.contains(&e.u.index()) && !crashed.contains(&e.v.index()))
                    .map(|e| e.id)
                    .collect();
                let surviving = graph.edge_subgraph(live_edges).unwrap();
                for v in graph.nodes() {
                    if crashed.contains(&v.index()) {
                        continue;
                    }
                    let view: HashSet<u32> = views[v.index()].iter().copied().collect();
                    for u in ball(&surviving, v, BROADCAST_T).unwrap() {
                        assert!(
                            view.contains(&u.raw()),
                            "{label}: node {v} missed {u} from its surviving-component ball"
                        );
                    }
                }
            }
            // Completeness: the exact t-ball everywhere.
            let complete = graph.nodes().all(|v| {
                let truth: Vec<u32> = ball(&frozen, v, BROADCAST_T)
                    .unwrap()
                    .into_iter()
                    .map(NodeId::raw)
                    .collect();
                views[v.index()] == truth
            });
            if complete && crashed.is_empty() && scenario.error.is_none() {
                Verdict::Correct
            } else {
                Verdict::DegradedSafe
            }
        },
    );
    // Broadcast soundness is unconditional: no profile may ever reach
    // Violated (a fabricated ID would mean the fault plane corrupted a
    // payload, not just dropped/duplicated/reordered envelopes).
    for (workload, profile, verdict) in &verdicts {
        assert_ne!(
            *verdict,
            Verdict::Violated,
            "ball-gathering/{workload}/{profile}: views contain fabricated IDs"
        );
    }
}

/// Fault plane × transport: the [`FaultPlan`] is resolved in the engine
/// *before* the barrier hands frames to a backend, so swapping the
/// in-process barrier for the wire-faithful mock must not move a single
/// bit — same ChaCha keying, same per-cause drop/duplicate totals, same
/// outputs, same error outcome. A reduced grid (first workload, every
/// profile, shards {1, 2}) over two algorithms is enough to pin this:
/// any keying drift would desynchronise the very first faulty round.
#[test]
fn fault_resolution_is_transport_independent() {
    fn check<P, O>(
        algo: &str,
        seed: u64,
        budget: u32,
        factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
        extract: impl Fn(&P) -> O + Copy,
    ) where
        P: NodeProgram,
        P::Message: WireCodec,
        O: PartialEq + Debug + Clone,
    {
        let (workload, graph) = workloads().remove(0);
        for (profile, plan) in profiles(&graph) {
            let label = format!("{algo}/{workload}/{profile}");
            for shards in [1usize, 2] {
                let reference = run_scenario(
                    &graph,
                    &plan,
                    seed,
                    budget,
                    shards,
                    TraceMode::Off,
                    factory,
                    extract,
                );
                let config = NetworkConfig::with_seed(seed).sharded(shards);
                let mut network = Network::with_transport(
                    &graph,
                    config,
                    plan.clone(),
                    MockTransport::new(),
                    factory,
                )
                .unwrap();
                let error = network.run_until_halt(budget).err().map(|e| e.to_string());
                let mock = Scenario {
                    outputs: network.programs().iter().map(&extract).collect(),
                    metrics: network.metrics().clone(),
                    ledger: network.ledger().clone(),
                    crashed: network.crashed_nodes(),
                    error,
                };
                assert_eq!(
                    reference, mock,
                    "{label}: mock backend diverged at {shards} shards"
                );
            }
        }
    }
    check(
        "luby-mis",
        1,
        300,
        |_, knowledge| LubyMis::new(knowledge.degree()),
        LubyMis::state,
    );
    check(
        "ball-gathering",
        4,
        BROADCAST_T + 2,
        |node, _| BallGathering::new(node, BROADCAST_T),
        BallGathering::known_ids,
    );
}

#[test]
fn trace_mode_parity_holds_under_faults() {
    let (_, graph) = workloads().remove(0);
    let n = graph.node_count();
    let mut plan = FaultPlan::new(77)
        .with_drop_probability(0.2)
        .with_delivery_perturbation();
    for (node, round) in crash_schedule(n) {
        plan = plan.with_crash(node, round);
    }
    let factory = |_: NodeId, knowledge: &InitialKnowledge| LubyMis::new(knowledge.degree());
    for shards in [1usize, 2] {
        let full = run_scenario(
            &graph,
            &plan,
            9,
            300,
            shards,
            TraceMode::Full,
            factory,
            LubyMis::state,
        );
        let off = run_scenario(
            &graph,
            &plan,
            9,
            300,
            shards,
            TraceMode::Off,
            factory,
            LubyMis::state,
        );
        assert_eq!(
            full, off,
            "trace mode changed a faulty execution at {shards} shards"
        );
        assert!(full.ledger.fault_totals().dropped > 0);
    }
}

/// The acceptance-criteria grid shape, pinned so a refactor cannot quietly
/// shrink the matrix: ≥ 4 fault kinds (drop, duplicate, link-cut, crash)
/// beyond clean, ≥ 3 workloads, shards {1, 2, 8}. (Four algorithms ride
/// through `drive` above.)
#[test]
fn matrix_grid_meets_the_acceptance_floor() {
    assert_eq!(SHARD_COUNTS, [1, 2, 8]);
    let graph = workloads().remove(0).1;
    let names: Vec<&str> = profiles(&graph).iter().map(|(name, _)| *name).collect();
    for required in ["clean", "drop", "crash", "link-cut"] {
        assert!(names.contains(&required), "missing profile {required}");
    }
    if !smoke() {
        assert!(names.contains(&"duplicate"));
        assert!(names.len() >= 5, "full grid shrank to {names:?}");
        assert!(workloads().len() >= 3);
    }
    // Every non-clean profile actually injects something.
    for (name, plan) in profiles(&graph) {
        if name == "clean" {
            assert!(plan.is_empty());
        } else {
            assert!(!plan.is_empty(), "profile {name} is empty");
        }
    }
}

/// The scheduling-parity row of the fault matrix: under the combined chaos
/// adversary (drop + duplicate + reorder + crash + link cuts) the
/// work-stealing scheduler must reproduce the sequential engine and the
/// static shard partition bit-for-bit. Fault fates are resolved from a
/// ChaCha stream keyed per message, so they cannot observe which worker
/// stepped the sender — this row pins that the chunk-claiming order
/// genuinely never leaks into fault resolution.
#[test]
fn fault_matrix_scheduling_parity() {
    use freelunch::runtime::Scheduling;
    let graph = workloads().remove(0).1;
    let n = graph.node_count();
    let m = graph.edge_count();
    let mut plan = FaultPlan::new(401)
        .with_drop_probability(0.05)
        .with_duplicate_probability(0.05)
        .with_delivery_perturbation()
        .with_crash(NodeId::from_usize(n / 2), 3);
    for e in (0..m as u64).step_by(9) {
        plan = plan.with_link_cut(EdgeId::new(e), 2);
    }
    let run = |shards: usize, sched: Scheduling| {
        let config = NetworkConfig::with_seed(7)
            .sharded(shards)
            .scheduling(sched)
            .chunk_size(5);
        let mut network = Network::with_fault_plan(&graph, config, plan.clone(), |_, knowledge| {
            LubyMis::new(knowledge.degree())
        })
        .unwrap();
        let error = network.run_until_halt(300).err().map(|e| e.to_string());
        Scenario {
            outputs: network.programs().iter().map(LubyMis::state).collect(),
            metrics: network.metrics().clone(),
            ledger: network.ledger().clone(),
            crashed: network.crashed_nodes(),
            error,
        }
    };
    let serial = run(1, Scheduling::Dynamic);
    for shards in [2, 8] {
        for sched in [Scheduling::Dynamic, Scheduling::Static] {
            assert_eq!(
                serial,
                run(shards, sched),
                "chaos run differs at {shards} shards under {sched:?}"
            );
        }
    }
}
