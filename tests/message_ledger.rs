//! Exact message-ledger accounting on hand-computed graphs, and the
//! cross-shard ledger-identity guarantee.
//!
//! The first half pins the flooding and gossip baselines to counts derived
//! by hand on a path, a star and `K4` — if any accounting rule of
//! `docs/METRICS.md` drifts (what counts as a message, byte sizing, round
//! slots, per-edge attribution), these tests fail with the exact number
//! that changed. The second half asserts the engine-level guarantee the
//! ledger inherits from PR 2: totals, per-edge vectors and congestion are
//! bit-identical across shard counts {1, 2, 8} at equal seeds.

use freelunch::algorithms::BallGathering;
use freelunch::baselines::{direct_flooding, gossip_broadcast, BaswanaSen, ClusterSpanner};
use freelunch::core::ledger::{CostPhase, Ledger};
use freelunch::core::maintain::IncrementalSpanner;
use freelunch::core::reduction::tlocal::{flood_on_subgraph_routed, FloodRouting, TOKEN_BYTES};
use freelunch::graph::generators::{
    barabasi_albert, sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
};
use freelunch::graph::{EdgeId, MultiGraph, NodeId};
use freelunch::runtime::{CostReport, MessageLedger, Network, NetworkConfig};

/// Path 0 − 1 − 2 − 3 (edges e0, e1, e2).
fn path4() -> MultiGraph {
    let mut g = MultiGraph::new(4);
    for (u, v) in [(0, 1), (1, 2), (2, 3)] {
        g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
    }
    g
}

/// Star with center 0 and leaves 1, 2, 3 (edges e0, e1, e2).
fn star4() -> MultiGraph {
    let mut g = MultiGraph::new(4);
    for v in 1..4 {
        g.add_edge(NodeId::new(0), NodeId::new(v)).unwrap();
    }
    g
}

/// The complete graph on 4 nodes (6 edges).
fn k4() -> MultiGraph {
    let mut g = MultiGraph::new(4);
    for u in 0..4u32 {
        for v in (u + 1)..4 {
            g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
    }
    g
}

#[test]
fn flooding_on_the_path_counts_exactly() {
    let graph = path4();
    // Every node stays active through round 3 on a path of 4 (each round
    // delivers at least one unseen token to every node), and the degree sum
    // is 6, so each radius-r flood costs exactly 6r messages.
    for t in 1..=3u32 {
        let outcome = direct_flooding(&graph, t).unwrap();
        assert_eq!(outcome.broadcast.cost.messages, 6 * u64::from(t), "t={t}");
        assert_eq!(outcome.broadcast.cost.rounds, u64::from(t));
        // Each edge carries one message per direction per round.
        let per_edge = 2 * u64::from(t);
        assert_eq!(
            outcome.ledger().messages_per_edge(),
            &[per_edge, per_edge, per_edge][..],
            "t={t}"
        );
        assert_eq!(outcome.ledger().max_congestion(), 2);
        assert_eq!(outcome.ledger().summary(), outcome.broadcast.cost);
    }
    // Round 1 bundles hold exactly one token each: 6 × TOKEN_BYTES bytes.
    let outcome = direct_flooding(&graph, 1).unwrap();
    assert_eq!(outcome.ledger().bytes_per_round()[1], 6 * TOKEN_BYTES);
    assert_eq!(outcome.ledger().messages_per_round(), &[0, 6][..]);
}

#[test]
fn flooding_on_the_star_goes_quiet_at_the_center() {
    let graph = star4();
    // Round 1: center sends 3, each leaf 1 → 6. Round 2: everyone learned
    // something new in round 1 → 6 more. Round 3: the center learned
    // nothing new in round 2 (the leaves' fresh token was its own ID), so
    // only the 3 leaves send → 3.
    let expected = [(1u32, 6u64), (2, 12), (3, 15)];
    for (t, messages) in expected {
        let outcome = direct_flooding(&graph, t).unwrap();
        assert_eq!(outcome.broadcast.cost.messages, messages, "t={t}");
        assert_eq!(outcome.broadcast.coverage_violations(&graph, t).unwrap(), 0);
    }
    // At radius 3 each star edge carried 2+2+1 = 5 messages.
    let outcome = direct_flooding(&graph, 3).unwrap();
    assert_eq!(outcome.ledger().messages_per_edge(), &[5, 5, 5][..]);
    assert_eq!(outcome.ledger().messages_per_round(), &[0, 6, 6, 3][..]);
    assert_eq!(
        outcome.ledger().max_edge_messages_per_round(),
        &[0, 2, 2, 1][..]
    );
}

#[test]
fn flooding_on_k4_saturates_after_one_round() {
    let graph = k4();
    // Round 1: 4 nodes × 3 edges = 12 messages, after which everyone knows
    // every token. Round 2: everyone was fresh in round 1 → 12 more.
    // Round 3: nobody learned anything in round 2 → silence.
    let expected = [(1u32, 12u64), (2, 24), (3, 24)];
    for (t, messages) in expected {
        let outcome = direct_flooding(&graph, t).unwrap();
        assert_eq!(outcome.broadcast.cost.messages, messages, "t={t}");
    }
    let outcome = direct_flooding(&graph, 3).unwrap();
    assert_eq!(outcome.ledger().messages_per_round(), &[0, 12, 12, 0][..]);
    assert_eq!(outcome.ledger().messages_per_edge(), &[4u64; 6][..]);
    assert_eq!(outcome.ledger().max_congestion(), 2);
    // Bytes: round 1 bundles one token (12 × 4 bytes); round 2 bundles the
    // three tokens learned in round 1 (12 × 12 bytes).
    assert_eq!(outcome.ledger().bytes_per_round()[1], 12 * TOKEN_BYTES);
    assert_eq!(outcome.ledger().bytes_per_round()[2], 12 * 3 * TOKEN_BYTES);
}

#[test]
fn gossip_charges_two_messages_per_node_per_round() {
    // Push–pull sends exactly 2 messages per non-isolated node per round,
    // whatever edges the RNG picks — so on these 4-node graphs the total is
    // exactly 8 × rounds, and every byte carries the ⌈n/64⌉-word bitset.
    for (label, graph) in [("path", path4()), ("star", star4()), ("k4", k4())] {
        let outcome = gossip_broadcast(&graph, 1, 7).unwrap();
        assert!(outcome.completed, "{label}");
        assert_eq!(
            outcome.cost.messages,
            2 * 4 * outcome.cost.rounds,
            "{label}"
        );
        assert_eq!(outcome.ledger.summary(), outcome.cost, "{label}");
        assert_eq!(
            outcome.ledger.messages_per_edge().iter().sum::<u64>(),
            outcome.cost.messages,
            "{label}"
        );
        assert_eq!(outcome.ledger.total_bytes(), 8 * outcome.cost.messages);
        // Per round: 8 messages across ≤ 3–6 edges, so some edge carries at
        // least 2 and (two pickers per edge) at most 4.
        assert!(outcome.ledger.max_congestion() >= 2, "{label}");
        assert!(outcome.ledger.max_congestion() <= 4, "{label}");
    }
}

#[test]
fn gossip_on_the_star_funnels_through_the_center() {
    // Leaves have exactly one incident edge, so every leaf exchange lands
    // on a center edge: all 8 per-round messages cross the 3 star edges.
    let outcome = gossip_broadcast(&star4(), 1, 3).unwrap();
    assert!(outcome.completed);
    let total: u64 = outcome.ledger.messages_per_edge().iter().sum();
    assert_eq!(total, outcome.cost.messages);
    assert!(outcome
        .ledger
        .messages_per_edge()
        .iter()
        .all(|&c| c >= 2 * outcome.cost.rounds));
}

#[test]
fn baswana_sen_k1_counts_exactly_on_the_hand_graphs() {
    // k = 1 skips every clustering phase and performs only the final
    // cluster-joining wave: one communication wave in which every edge
    // carries one 4-byte cluster ID per direction. Exactly 2m messages,
    // 8m bytes, ledger round slots [0, 2m] — on any graph, any seed.
    for (label, graph) in [("path", path4()), ("star", star4()), ("k4", k4())] {
        for seed in [0u64, 7] {
            let m = graph.edge_count() as u64;
            let outcome = BaswanaSen::new(1).unwrap().run(&graph, seed).unwrap();
            let ledger = &outcome.ledger;
            assert_eq!(outcome.cost.messages, 2 * m, "{label} seed={seed}");
            assert_eq!(outcome.cost.rounds, 2, "{label} seed={seed}");
            assert_eq!(ledger.rounds(), 1, "{label} seed={seed}");
            assert_eq!(ledger.messages_per_round(), &[0, 2 * m][..], "{label}");
            assert_eq!(
                ledger.messages_per_edge(),
                &vec![2u64; m as usize][..],
                "{label} seed={seed}"
            );
            assert_eq!(ledger.max_congestion(), 2, "{label}");
            assert_eq!(ledger.total_bytes(), 4 * 2 * m, "{label}");
            assert_eq!(ledger.summary().messages, outcome.cost.messages, "{label}");
            assert_eq!(ledger.fault_totals().dropped, 0, "{label}");
        }
    }
}

#[test]
fn baswana_sen_k2_first_wave_touches_every_edge_of_k4() {
    // k = 2 on K4: wave 1 (the clustering phase) always meters every one of
    // the 6 edges twice — 12 messages — whatever the sampling does; wave 2
    // (the joining phase) can only touch surviving edges. Rounds: 3 for the
    // clustering phase + 2 for the final phase.
    let graph = k4();
    for seed in [1u64, 5, 9] {
        let outcome = BaswanaSen::new(2).unwrap().run(&graph, seed).unwrap();
        let ledger = &outcome.ledger;
        assert_eq!(outcome.cost.rounds, 5, "seed={seed}");
        assert_eq!(ledger.rounds(), 2, "seed={seed}");
        assert_eq!(ledger.messages_per_round()[0], 0, "seed={seed}");
        assert_eq!(ledger.messages_per_round()[1], 12, "seed={seed}");
        assert!(ledger.messages_per_round()[2] <= 12, "seed={seed}");
        assert_eq!(
            ledger.total_messages(),
            12 + ledger.messages_per_round()[2],
            "seed={seed}"
        );
        assert_eq!(
            outcome.cost.messages,
            ledger.total_messages(),
            "seed={seed}"
        );
        // Every message is one 4-byte cluster ID; per wave an edge carries
        // at most one message per direction.
        assert_eq!(
            ledger.total_bytes(),
            4 * ledger.total_messages(),
            "seed={seed}"
        );
        assert_eq!(ledger.max_congestion(), 2, "seed={seed}");
    }
}

#[test]
fn derbel_cluster_spanner_counts_exactly_on_the_hand_graphs() {
    // The Derbel-style direct execution is fully deterministic in the
    // meter: radius + 2 rounds, every edge carrying one 4-byte token per
    // direction per round. On path/star (m = 3) with ρ = 1 that is 3 rounds
    // × 6 messages; on K4 (m = 6), 3 rounds × 12.
    for (label, graph) in [("path", path4()), ("star", star4()), ("k4", k4())] {
        let m = graph.edge_count() as u64;
        for radius in [1u32, 2] {
            let rounds = u64::from(radius) + 2;
            let outcome = ClusterSpanner::new(radius).unwrap().run(&graph, 3).unwrap();
            let ledger = &outcome.ledger;
            let case = format!("{label} radius={radius}");
            assert_eq!(outcome.cost.rounds, rounds, "{case}");
            assert_eq!(outcome.cost.messages, 2 * m * rounds, "{case}");
            assert_eq!(ledger.rounds(), rounds, "{case}");
            let mut expected_rounds = vec![0u64];
            expected_rounds.extend(std::iter::repeat_n(2 * m, rounds as usize));
            assert_eq!(ledger.messages_per_round(), &expected_rounds[..], "{case}");
            assert_eq!(
                ledger.messages_per_edge(),
                &vec![2 * rounds; m as usize][..],
                "{case}"
            );
            assert_eq!(ledger.max_congestion(), 2, "{case}");
            assert_eq!(ledger.total_bytes(), 4 * outcome.cost.messages, "{case}");
            assert_eq!(ledger.summary(), outcome.cost, "{case}");
            assert_eq!(ledger.fault_totals().dropped, 0, "{case}");
        }
    }
}

#[test]
fn maintenance_repairs_count_exactly_on_the_hand_graphs() {
    // The per-operation repair meter of `docs/CHURN.md`, pinned by hand.
    // All three graphs are built with node 0 as the only seeded center, so
    // the cluster structure (and therefore every count) is fully
    // deterministic.
    let centers = [NodeId::new(0)];

    // Path insert: a fresh edge (0, 3) bridges cluster 0 and the singleton
    // cluster {3} — 2 endpoint notifications plus 1 adoption message when
    // the edge joins the spanner. One round.
    let mut path = IncrementalSpanner::with_centers(&path4(), &centers).unwrap();
    let report = path
        .insert_edge(EdgeId::new(3), NodeId::new(0), NodeId::new(3))
        .unwrap();
    assert_eq!(report.cost, CostReport::new(1, 3));
    assert_eq!(report.added_to_spanner, vec![EdgeId::new(3)]);

    // Star delete: e0 is leaf 1's tree edge. The poll costs 2·deg messages
    // — but the leaf has no remaining neighbors, so it re-homes to a
    // singleton cluster for free. Two rounds (poll + audit), zero messages.
    let mut star = IncrementalSpanner::with_centers(&star4(), &centers).unwrap();
    let report = star.delete_edge(EdgeId::new(0)).unwrap();
    assert_eq!(report.cost, CostReport::new(2, 0));
    assert!(report.removed_from_spanner);
    assert_eq!(report.rehomed, Some(NodeId::new(1)));

    // K4 delete of a non-spanner edge: e3 = (1, 2) is neither a tree edge
    // nor anyone's only foreign-cluster cover (all of K4 is one cluster),
    // so the repair is entirely free.
    let mut k4s = IncrementalSpanner::with_centers(&k4(), &centers).unwrap();
    let report = k4s.delete_edge(EdgeId::new(3)).unwrap();
    assert_eq!(report.cost, CostReport::new(0, 0));
    assert!(!report.removed_from_spanner);
    assert!(report.added_to_spanner.is_empty());

    // K4 delete of tree edge e0 = (0, 1): node 1 polls its 2 remaining
    // neighbors (4 messages), finds no adjacent center, re-homes to a
    // singleton, and the audit of {1} ∪ N(1) promotes e3 (covering 1 ↔
    // cluster 0 — which also covers node 2 back) and e4 (covering 3 ↔
    // cluster 1) at 2 messages each: 4 + 2 + 2 = 8, two rounds.
    let mut k4s = IncrementalSpanner::with_centers(&k4(), &centers).unwrap();
    let report = k4s.delete_edge(EdgeId::new(0)).unwrap();
    assert_eq!(report.cost, CostReport::new(2, 8));
    assert_eq!(
        report.added_to_spanner,
        vec![EdgeId::new(3), EdgeId::new(4)]
    );
    assert_eq!(report.rehomed, Some(NodeId::new(1)));
}

#[test]
fn maintenance_charges_land_in_their_own_ledger_phase() {
    // A three-event K4 stream with hand-computed totals: delete e3 is free;
    // delete e0 then polls only neighbor 3 (2 messages) and the audit
    // promotes e4 (2 more); re-inserting (0, 1) as e6 costs 2 + 1 adoption.
    // Cumulative bill: 3 rounds, 7 messages.
    let mut spanner = IncrementalSpanner::with_centers(&k4(), &[NodeId::new(0)]).unwrap();
    spanner.delete_edge(EdgeId::new(3)).unwrap();
    spanner.delete_edge(EdgeId::new(0)).unwrap();
    spanner
        .insert_edge(EdgeId::new(6), NodeId::new(0), NodeId::new(1))
        .unwrap();
    assert_eq!(spanner.maintenance_cost(), CostReport::new(3, 7));
    assert_eq!(spanner.repairs(), 3);

    // On the meter, maintenance is its own phase and counts into the
    // scheme's side of the free-lunch ratio.
    let mut ledger = Ledger::new();
    ledger.charge(
        CostPhase::SpannerConstruction,
        "seeded build",
        spanner.build_cost(),
    );
    ledger.charge(
        CostPhase::Maintenance,
        "3 churn repairs",
        spanner.maintenance_cost(),
    );
    ledger.charge(
        CostPhase::DirectExecution,
        "hypothetical direct run",
        CostReport::new(4, 100),
    );
    assert_eq!(
        ledger.phase_cost(CostPhase::Maintenance),
        CostReport::new(3, 7)
    );
    let scheme = ledger.scheme_cost();
    assert_eq!(
        scheme.messages,
        spanner.build_cost().messages + 7,
        "maintenance must count into the scheme cost"
    );
    let ratio = ledger.free_lunch_ratio().unwrap();
    assert!(
        (ratio - 100.0 / scheme.messages as f64).abs() < 1e-12,
        "free-lunch ratio must price maintenance in: {ratio}"
    );
}

/// K4 with the (0, 1) edge doubled: e0..e5 as in [`k4`], plus e6 = (0, 1).
fn k4_doubled_edge() -> MultiGraph {
    let mut g = k4();
    g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
    g
}

/// The diamond (4-cycle 0−1−2−3 plus the chord (0, 2)) with the chord
/// doubled: e0=(0,1), e1=(1,2), e2=(2,3), e3=(3,0), e4=(0,2), e5=(0,2).
fn diamond_doubled_chord() -> MultiGraph {
    let mut g = MultiGraph::new(4);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (0, 2)] {
        g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
    }
    g
}

#[test]
fn congestion_aware_routing_on_k4_with_a_doubled_edge_counts_exactly() {
    // Neighbor-class routing sends one bundle per (sender, distinct
    // neighbor) per round: 4 nodes × 3 neighbors = 12 bundles per round,
    // and on K4 every node stays fresh through round 2 → exactly 24
    // messages at radius 2, whatever the parallel (0, 1) pair does.
    let graph = k4_doubled_edge();
    let edges: Vec<EdgeId> = graph.edge_ids().collect();
    let run =
        |routing| flood_on_subgraph_routed(&graph, edges.iter().copied(), 2, routing).unwrap();
    let canonical = run(FloodRouting::Canonical);
    let aware = run(FloodRouting::CongestionAware);
    for outcome in [&canonical, &aware] {
        assert_eq!(outcome.cost.messages, 24);
        assert_eq!(outcome.ledger.messages_per_round(), &[0, 12, 12][..]);
        // Simple edges carry both directions, so the per-round peak is 2
        // for both policies; only the parallel class distribution differs.
        assert_eq!(outcome.ledger.max_edge_messages_per_round(), &[0, 2, 2][..]);
        // Round 1 bundles one token (12 × 4 B), round 2 the three tokens
        // learned in round 1 (12 × 12 B).
        assert_eq!(outcome.ledger.bytes_per_round()[1], 12 * TOKEN_BYTES);
        assert_eq!(outcome.ledger.bytes_per_round()[2], 12 * 3 * TOKEN_BYTES);
        assert_eq!(outcome.tokens_received, vec![4, 4, 4, 4]);
    }
    // Canonical always picks the lowest-ID edge of the (0, 1) class: e0
    // carries all 4 bundles, the parallel e6 idles.
    assert_eq!(
        canonical.ledger.messages_per_edge(),
        &[4, 4, 4, 4, 4, 4, 0][..]
    );
    // Congestion-aware round-robins the class with a direction offset: each
    // of e0/e6 carries one direction per round — 2 and 2.
    assert_eq!(aware.ledger.messages_per_edge(), &[2, 4, 4, 4, 4, 4, 2][..]);
    // Pointwise domination holds in both directions here (equal peaks).
    let canonical_snap = canonical.ledger.congestion_snapshot();
    let aware_snap = aware.ledger.congestion_snapshot();
    assert!(aware_snap.never_exceeds(&canonical_snap));
    assert_eq!(aware_snap.total_messages, canonical_snap.total_messages);
    // The historical per-edge flood charges every incident edge instead of
    // every neighbor class: Σ deg = 14 bundles per round → 28 total, with
    // the same knowledge spread.
    let per_edge = run(FloodRouting::PerEdge);
    assert_eq!(per_edge.cost.messages, 28);
    assert_eq!(per_edge.tokens_received, vec![4, 4, 4, 4]);
}

#[test]
fn congestion_aware_routing_on_the_diamond_chord_counts_exactly() {
    // Diamond distinct-neighbor degrees are 3, 2, 3, 2 → 10 bundles per
    // round; every node learns something in round 1, so round 2 repeats:
    // exactly 20 messages at radius 2.
    let graph = diamond_doubled_chord();
    let edges: Vec<EdgeId> = graph.edge_ids().collect();
    let run =
        |routing| flood_on_subgraph_routed(&graph, edges.iter().copied(), 2, routing).unwrap();
    let canonical = run(FloodRouting::Canonical);
    let aware = run(FloodRouting::CongestionAware);
    for outcome in [&canonical, &aware] {
        assert_eq!(outcome.cost.messages, 20);
        assert_eq!(outcome.ledger.messages_per_round(), &[0, 10, 10][..]);
        assert_eq!(outcome.tokens_received, vec![4, 4, 4, 4]);
    }
    // The chord class (e4, e5): canonical rides e4 in both directions every
    // round (4 total, e5 idle); aware gives each direction its own edge.
    assert_eq!(
        canonical.ledger.messages_per_edge(),
        &[4, 4, 4, 4, 4, 0][..]
    );
    assert_eq!(aware.ledger.messages_per_edge(), &[4, 4, 4, 4, 2, 2][..]);
    assert_eq!(
        canonical.ledger.total_bytes(),
        aware.ledger.total_bytes(),
        "routing must not change the byte bill"
    );
    assert!(aware
        .ledger
        .congestion_snapshot()
        .never_exceeds(&canonical.ledger.congestion_snapshot()));
}

#[test]
fn congestion_aware_routing_dominates_canonical_on_duplicated_graphs() {
    // The property the routing variant guarantees on any multigraph:
    // identical totals/bytes/knowledge, and per-round max edge congestion
    // pointwise ≤ canonical. With every edge doubled the peak strictly
    // drops (each direction gets its own parallel edge).
    let community = sparse_planted_partition(&GeneratorConfig::new(96, 23), 4, 8.0, 1.0).unwrap();
    let scale_free = barabasi_albert(&GeneratorConfig::new(96, 29), 3).unwrap();
    for (name, base) in [("communities", community), ("scale-free", scale_free)] {
        for stride in [1usize, 2] {
            let mut graph = MultiGraph::new(base.node_count());
            let pairs: Vec<_> = base.edges().map(|e| (e.u, e.v)).collect();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                graph.add_edge(u, v).unwrap();
                if i % stride == 0 {
                    graph.add_edge(u, v).unwrap();
                }
            }
            for radius in [2u32, 3] {
                let edges: Vec<EdgeId> = graph.edge_ids().collect();
                let canonical = flood_on_subgraph_routed(
                    &graph,
                    edges.iter().copied(),
                    radius,
                    FloodRouting::Canonical,
                )
                .unwrap();
                let aware = flood_on_subgraph_routed(
                    &graph,
                    edges.iter().copied(),
                    radius,
                    FloodRouting::CongestionAware,
                )
                .unwrap();
                let case = format!("{name} stride={stride} radius={radius}");
                assert_eq!(canonical.cost, aware.cost, "{case}: totals changed");
                assert_eq!(
                    canonical.ledger.total_bytes(),
                    aware.ledger.total_bytes(),
                    "{case}: bytes changed"
                );
                assert_eq!(
                    canonical.tokens_received, aware.tokens_received,
                    "{case}: knowledge changed"
                );
                let canonical_snap = canonical.ledger.congestion_snapshot();
                let aware_snap = aware.ledger.congestion_snapshot();
                assert!(
                    aware_snap.never_exceeds(&canonical_snap),
                    "{case}: congestion-aware exceeded canonical"
                );
                if stride == 1 {
                    assert!(
                        aware_snap.peak < canonical_snap.peak,
                        "{case}: full duplication must flatten the peak \
                         (aware {} vs canonical {})",
                        aware_snap.peak,
                        canonical_snap.peak
                    );
                }
            }
        }
    }
}

/// Runs `BallGathering` for two rounds and returns the engine's ledger.
fn ball_gathering_ledger(graph: &MultiGraph, shards: usize, seed: u64) -> MessageLedger {
    let config = NetworkConfig::with_seed(seed).sharded(shards);
    let mut network = Network::new(graph, config, |node, _| BallGathering::new(node, 2)).unwrap();
    network.run_rounds(2).unwrap();
    network.ledger().clone()
}

#[test]
fn ledger_is_bit_identical_across_shard_counts() {
    let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(96, 17), 6.0).unwrap();
    for seed in [1u64, 42] {
        let reference = ball_gathering_ledger(&graph, 1, seed);
        assert!(reference.total_messages() > 0);
        for shards in [2usize, 8] {
            let sharded = ball_gathering_ledger(&graph, shards, seed);
            // Full structural equality: totals, per-edge and per-round
            // vectors, byte counts and congestion all match bit for bit.
            assert_eq!(reference, sharded, "seed={seed} shards={shards}");
            assert_eq!(
                reference.total_messages(),
                sharded.total_messages(),
                "seed={seed} shards={shards}"
            );
            assert_eq!(
                reference.total_bytes(),
                sharded.total_bytes(),
                "seed={seed} shards={shards}"
            );
        }
    }
}
