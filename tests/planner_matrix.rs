//! Planner matrix: the prediction-accuracy, decision-quality and
//! bit-identity contract of `freelunch-core::planner`.
//!
//! For every (workload family × size) cell the matrix executes **all
//! three** paths ([`Plan::execute_all`]) and asserts
//!
//! * every path's predicted message count lies inside the documented
//!   [`Tolerances`] band of the measured ledger (the exact default band
//!   values are pinned by [`the_tolerance_contract_is_pinned`]);
//! * the chosen path is never worse than 1.15× the measured-cheapest path;
//! * the grid covers **both** decision branches: the complete family
//!   decides `spanner_sim`, every sparse/dense-ER family decides `direct`;
//! * plans and reports are bit-identical across replans and re-executions
//!   (`PartialEq` *and* the full `Debug` rendering, every float bit
//!   included), and the engine-measured direct ledger attached to the
//!   report is bit-identical across shard counts {1, 2, 8} and across the
//!   in-process, mock and two-rank TCP transport backends.
//!
//! `PLANNER_MATRIX_SMOKE=1` shrinks the grid to one cell per decision
//! branch for CI.

use freelunch::algorithms::BallGathering;
use freelunch::baselines::ClusterSpanner;
use freelunch::core::planner::{PathChoice, PlanReport, SchemePlanner, Tolerances};
use freelunch::graph::MultiGraph;
use freelunch::runtime::transport::{MockTransport, TcpConfig, TcpTransport};
use freelunch::runtime::{FaultPlan, MessageLedger, Network, NetworkConfig};
use freelunch_bench::{ScalingWorkload, Workload};
use std::net::{SocketAddr, TcpListener};

/// Locality parameter of every planned broadcast in the matrix.
const T: u32 = 2;
/// Seed of every execution (workload generation uses per-cell sizes).
const SEED: u64 = 42;

/// Whether the reduced CI grid was requested.
fn smoke() -> bool {
    std::env::var("PLANNER_MATRIX_SMOKE").is_ok()
}

/// The matrix cells: label, graph, and the decision branch the cell must
/// land on (the grid is chosen to exercise both branches).
fn cells() -> Vec<(String, MultiGraph, PathChoice)> {
    let mut cells = Vec::new();
    let sparse_sizes: &[usize] = if smoke() { &[96] } else { &[96, 192] };
    let dense_sizes: &[usize] = if smoke() { &[96] } else { &[96, 160] };
    let complete_sizes: &[usize] = if smoke() { &[96] } else { &[96, 160] };
    for workload in ScalingWorkload::all() {
        // In smoke mode one sparse family is enough for the direct branch.
        if smoke() && workload != ScalingWorkload::ErdosRenyi {
            continue;
        }
        for &n in sparse_sizes {
            cells.push((
                format!("{}/{n}", workload.label()),
                workload.build(n, SEED).unwrap(),
                PathChoice::Direct,
            ));
        }
    }
    for &n in dense_sizes {
        cells.push((
            format!("dense-er/{n}"),
            Workload::DenseRandom.build(n, SEED).unwrap(),
            PathChoice::Direct,
        ));
    }
    for &n in complete_sizes {
        cells.push((
            format!("complete/{n}"),
            Workload::Complete.build(n, SEED).unwrap(),
            PathChoice::SpannerSim,
        ));
    }
    cells
}

fn planner() -> SchemePlanner {
    SchemePlanner::new(T).unwrap()
}

fn second_stage() -> ClusterSpanner {
    ClusterSpanner::new(1).unwrap()
}

#[test]
fn the_tolerance_contract_is_pinned() {
    // The documented prediction-accuracy contract of `docs/PLANNER.md`.
    // Changing any band is an API-contract change: update the docs, the
    // calibration provenance and this pin together.
    let tolerances = Tolerances::default();
    assert_eq!(tolerances.direct.lower, 0.95);
    assert_eq!(tolerances.direct.upper, 1.05);
    assert_eq!(tolerances.spanner_sim.lower, 0.70);
    assert_eq!(tolerances.spanner_sim.upper, 1.40);
    assert_eq!(tolerances.two_stage.lower, 0.65);
    assert_eq!(tolerances.two_stage.upper, 1.45);
    // The canonical path order and the stable labels recorded in JSON.
    assert_eq!(
        PathChoice::ALL,
        [
            PathChoice::Direct,
            PathChoice::SpannerSim,
            PathChoice::TwoStage
        ]
    );
    assert_eq!(PathChoice::Direct.label(), "direct");
    assert_eq!(PathChoice::SpannerSim.label(), "spanner_sim");
    assert_eq!(PathChoice::TwoStage.label(), "two_stage");
}

#[test]
fn predictions_stay_inside_the_bands_and_decisions_are_near_optimal() {
    let planner = planner();
    let second = second_stage();
    for (label, graph, expected_branch) in cells() {
        let plan = planner.plan_with_second_stage(&graph, &second).unwrap();
        assert_eq!(
            plan.decision,
            expected_branch,
            "{label}: expected the {} branch, planner chose {}",
            expected_branch.label(),
            plan.decision.label()
        );
        let report = plan.execute_all(&graph, SEED, &second).unwrap();
        let audit = report.audit();
        for entry in &audit.entries {
            assert!(
                entry.within_band,
                "{label}/{}: predicted {:.0} vs measured {} (ratio {:.3}) \
                 outside [{}, {}]",
                entry.path.label(),
                entry.predicted_messages,
                entry.measured_messages,
                entry.ratio,
                entry.band.lower,
                entry.band.upper
            );
        }
        // The planner may be beaten by hindsight, but never by more than
        // 15% — the decision-quality contract of `docs/PLANNER.md`.
        let regret = audit.regret.expect("all three paths were measured");
        assert!(
            regret <= 1.15,
            "{label}: chosen path measured {regret:.3}× the best path"
        );
        // Direct is exact at t ≤ 2 on connected graphs: ratio exactly 1.
        let direct = report
            .measured(PathChoice::Direct)
            .expect("direct was measured");
        assert_eq!(
            plan.predicted(PathChoice::Direct).unwrap().messages,
            direct.cost.messages as f64,
            "{label}: the 2·t·m law must be exact"
        );
    }
}

/// Runs the direct reference (`BallGathering`, `t` rounds) on the
/// in-process engine and returns its ledger.
fn in_process_direct(graph: &MultiGraph, shards: usize) -> MessageLedger {
    let config = NetworkConfig::with_seed(SEED).sharded(shards);
    let mut network = Network::new(graph, config, |node, _| BallGathering::new(node, T)).unwrap();
    network.run_rounds(T).unwrap();
    network.ledger().clone()
}

/// The same execution over the wire-faithful mock transport.
fn mock_direct(graph: &MultiGraph, shards: usize) -> MessageLedger {
    let config = NetworkConfig::with_seed(SEED).sharded(shards);
    let mut network = Network::with_transport(
        graph,
        config,
        FaultPlan::none(),
        MockTransport::new(),
        |node, _| BallGathering::new(node, T),
    )
    .unwrap();
    network.run_rounds(T).unwrap();
    network.ledger().clone()
}

/// The same execution as a two-process group over localhost TCP; returns
/// both ranks' ledgers (the stats exchange must give each rank the
/// identical global view).
fn tcp_direct(graph: &MultiGraph, shards: usize) -> Vec<MessageLedger> {
    const WORLD: usize = 2;
    let listeners: Vec<TcpListener> = (0..WORLD)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<SocketAddr> = listeners
        .iter()
        .map(|listener| listener.local_addr().unwrap())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let config = TcpConfig::new(rank, peers.clone());
                scope.spawn(move || {
                    let transport = TcpTransport::with_listener(listener, &config).unwrap();
                    let mut network = Network::with_transport(
                        graph,
                        NetworkConfig::with_seed(SEED).sharded(shards),
                        FaultPlan::none(),
                        transport,
                        |node, _| BallGathering::new(node, T),
                    )
                    .unwrap();
                    network.run_rounds(T).unwrap();
                    network.ledger().clone()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    })
}

/// Two reports are bit-identical: structural equality *and* the full
/// `Debug` rendering (every float bit included). The vendored `serde_json`
/// cannot serialize arbitrary types, so the Debug string doubles as the
/// canonical byte-level rendering.
fn assert_bit_identical(a: &PlanReport, b: &PlanReport, context: &str) {
    assert_eq!(a, b, "{context}: reports differ structurally");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "{context}: report renderings differ"
    );
}

#[test]
fn reports_are_bit_identical_across_shards_and_backends() {
    let planner = planner();
    let second = second_stage();
    let shard_counts: &[usize] = if smoke() { &[1, 2] } else { &[1, 2, 8] };
    for (label, graph, _) in cells() {
        // Planning and execution are pure functions of (graph, config,
        // seed): replanning and re-executing must reproduce the report bit
        // for bit.
        let plan = planner.plan_with_second_stage(&graph, &second).unwrap();
        let replan = planner.plan_with_second_stage(&graph, &second).unwrap();
        assert_eq!(plan, replan, "{label}: replan diverged");
        assert_eq!(
            format!("{plan:?}"),
            format!("{replan:?}"),
            "{label}: replan rendering diverged"
        );
        let mut reference = plan.execute(&graph, SEED, &second).unwrap();
        let rerun = plan.execute(&graph, SEED, &second).unwrap();
        assert_bit_identical(&reference, &rerun, &format!("{label}: re-execution"));

        // The engine-measured direct ledger is the one observable that
        // crosses the runtime: attach it from every (backend × shard
        // count) execution — the full report must stay bit-identical.
        reference.attach_engine_direct(in_process_direct(&graph, shard_counts[0]));
        for &shards in shard_counts {
            let mut in_process = plan.execute(&graph, SEED, &second).unwrap();
            in_process.attach_engine_direct(in_process_direct(&graph, shards));
            assert_bit_identical(
                &reference,
                &in_process,
                &format!("{label}: in-process at {shards} shards"),
            );

            let mut mock = plan.execute(&graph, SEED, &second).unwrap();
            mock.attach_engine_direct(mock_direct(&graph, shards));
            assert_bit_identical(
                &reference,
                &mock,
                &format!("{label}: mock at {shards} shards"),
            );
        }
        for (rank, ledger) in tcp_direct(&graph, 1).into_iter().enumerate() {
            let mut tcp = plan.execute(&graph, SEED, &second).unwrap();
            tcp.attach_engine_direct(ledger);
            assert_bit_identical(&reference, &tcp, &format!("{label}: TCP rank {rank}"));
        }
    }
}
