//! Recovery matrix: the crash-recovery contract of `docs/RECOVERY.md`.
//!
//! The pinned property is **kill-and-resume ≡ uninterrupted**: interrupting
//! an execution at any round boundary, serializing a [`NetworkCheckpoint`]
//! through its on-disk byte format, dropping every piece of live state, and
//! restoring must produce outputs, [`ExecutionMetrics`], [`MessageLedger`]
//! and [`Trace`] bit-identical to the run that was never interrupted — for
//! every algorithm with checkpoint hooks, at shard counts 1/2/8, on the
//! in-process, mock and TCP backends, and under composed fault + churn
//! plans. The TCP rows additionally drill the self-healing plane: a killed
//! rank relaunched from its checkpoint rejoins the surviving mesh through
//! the [`RejoinHello`] handshake under [`RecoveryPolicy::Retry`], a stale
//! checkpoint is rejected as desynchronized on *both* sides, and a dead or
//! silent peer surfaces a timely `PeerDead` instead of hanging.
//!
//! `RECOVERY_MATRIX_SMOKE=1` shrinks the grid (CI's quick pass); the full
//! matrix runs by default.
//!
//! [`RejoinHello`]: freelunch::runtime::RejoinHello

use freelunch::algorithms::{BallGathering, LubyMis, RandomizedColoring};
use freelunch::graph::generators::{
    barabasi_albert, sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
};
use freelunch::graph::{MultiGraph, NodeId};
use freelunch::runtime::transport::{
    InProcessTransport, MockTransport, RecoveryPolicy, TcpConfig, TcpTransport, WireCodec,
};
use freelunch::runtime::{
    ChurnPlan, ExecutionMetrics, FaultPlan, InitialKnowledge, MessageLedger, Network,
    NetworkCheckpoint, NetworkConfig, NodeProgram, RuntimeError, Transport,
};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("RECOVERY_MATRIX_SMOKE").is_ok()
}

fn shard_counts() -> Vec<usize> {
    if smoke() {
        vec![2]
    } else {
        vec![1, 2, 8]
    }
}

fn workloads() -> Vec<(&'static str, MultiGraph)> {
    let mut families = vec![(
        "sparse-er",
        sparse_connected_erdos_renyi(&GeneratorConfig::new(64, 41), 5.0).unwrap(),
    )];
    if !smoke() {
        families.push((
            "scale-free",
            barabasi_albert(&GeneratorConfig::new(64, 42), 3).unwrap(),
        ));
        families.push((
            "communities",
            sparse_planted_partition(&GeneratorConfig::new(64, 43), 4, 7.0, 1.0).unwrap(),
        ));
    }
    families
}

/// The checkpoint rounds to interrupt at, given the uninterrupted run took
/// `total` rounds. Round 0 (before initialization) and the last boundary
/// are always interesting; smoke mode keeps only the middle.
fn kill_rounds(total: u32) -> Vec<u32> {
    if smoke() {
        return vec![(total / 2).clamp(1, total.max(1))];
    }
    let candidates = [0, 1, total / 2, total.saturating_sub(1)];
    candidates
        .into_iter()
        .filter(|&r| r <= total)
        .collect::<BTreeSet<u32>>()
        .into_iter()
        .collect()
}

/// Runs `factory`'s program uninterrupted, then for every kill round: runs
/// a second execution to that round, captures a checkpoint, round-trips it
/// through the on-disk byte format, **drops the live network**, restores,
/// finishes the run, and asserts every observable matches the uninterrupted
/// reference bit-for-bit. `rounds` limits fault/churn scenarios that never
/// halt: `Some(r)` runs exactly `r` rounds instead of running to quiescence.
#[allow(clippy::too_many_arguments)]
fn assert_kill_resume_identity<P, O, T>(
    graph: &MultiGraph,
    seed: u64,
    budget: u32,
    rounds: Option<u32>,
    plan: &FaultPlan,
    churn: &ChurnPlan,
    shards: usize,
    traced: bool,
    make_transport: impl Fn() -> T,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy,
    extract: impl Fn(&P) -> O + Copy,
    label: &str,
) where
    P: NodeProgram,
    P::Message: WireCodec,
    T: Transport<P::Message>,
    O: PartialEq + Debug,
{
    let config = if traced {
        NetworkConfig::with_seed(seed)
            .traced(100_000)
            .sharded(shards)
    } else {
        NetworkConfig::with_seed(seed).sharded(shards)
    };
    let run_to_end = |network: &mut Network<P, T>| match rounds {
        Some(total) => {
            let remaining = total - network.current_round();
            network.run_rounds(remaining)
        }
        None => network.run_until_halt(budget),
    };

    let mut reference = Network::with_plans(
        graph,
        config,
        plan.clone(),
        churn.clone(),
        make_transport(),
        factory,
    )
    .unwrap();
    run_to_end(&mut reference).unwrap_or_else(|e| panic!("{label}: uninterrupted run: {e}"));
    let total = reference.current_round();
    let ref_outputs: Vec<O> = reference.programs().iter().map(extract).collect();
    let ref_metrics = reference.metrics().clone();
    let ref_ledger = reference.ledger().clone();
    let ref_trace = reference.trace().clone();

    for kill in kill_rounds(total) {
        let mut victim = Network::with_plans(
            graph,
            config,
            plan.clone(),
            churn.clone(),
            make_transport(),
            factory,
        )
        .unwrap();
        victim.run_rounds(kill).unwrap();
        let checkpoint = victim.checkpoint();
        assert_eq!(checkpoint.round, kill, "{label}: checkpoint round");
        // The crash: every piece of live state is gone. Only the serialized
        // checkpoint (the on-disk byte format, not the in-memory struct)
        // survives the boundary.
        drop(victim);
        let bytes = checkpoint.to_bytes();
        let reloaded = NetworkCheckpoint::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{label}/kill@{kill}: reload: {e}"));
        assert_eq!(checkpoint, reloaded, "{label}/kill@{kill}: byte round-trip");

        let mut resumed = Network::restore_with_plans(
            graph,
            plan.clone(),
            churn.clone(),
            make_transport(),
            &reloaded,
            factory,
        )
        .unwrap_or_else(|e| panic!("{label}/kill@{kill}: restore: {e}"));
        assert_eq!(resumed.current_round(), kill, "{label}/kill@{kill}");
        run_to_end(&mut resumed).unwrap_or_else(|e| panic!("{label}/kill@{kill}: resume: {e}"));

        assert_eq!(
            resumed.current_round(),
            total,
            "{label}/kill@{kill}: rounds"
        );
        let outputs: Vec<O> = resumed.programs().iter().map(extract).collect();
        assert_eq!(ref_outputs, outputs, "{label}/kill@{kill}: outputs differ");
        assert_eq!(
            &ref_metrics,
            resumed.metrics(),
            "{label}/kill@{kill}: metrics differ"
        );
        assert_eq!(
            &ref_ledger,
            resumed.ledger(),
            "{label}/kill@{kill}: ledgers differ"
        );
        assert_eq!(
            &ref_trace,
            resumed.trace(),
            "{label}/kill@{kill}: traces differ"
        );
    }
}

#[test]
fn luby_mis_kill_resume_is_bit_identical_in_process() {
    for (name, graph) in workloads() {
        for shards in shard_counts() {
            assert_kill_resume_identity(
                &graph,
                1,
                300,
                None,
                &FaultPlan::none(),
                &ChurnPlan::none(),
                shards,
                true,
                InProcessTransport::new,
                |_, knowledge| LubyMis::new(knowledge.degree()),
                LubyMis::state,
                &format!("luby-mis/{name}/{shards}sh"),
            );
        }
    }
}

#[test]
fn randomized_coloring_kill_resume_is_bit_identical_in_process() {
    for (name, graph) in workloads() {
        for shards in shard_counts() {
            assert_kill_resume_identity(
                &graph,
                2,
                400,
                None,
                &FaultPlan::none(),
                &ChurnPlan::none(),
                shards,
                true,
                InProcessTransport::new,
                |_, knowledge| RandomizedColoring::new(knowledge.degree()),
                RandomizedColoring::color,
                &format!("coloring/{name}/{shards}sh"),
            );
        }
    }
}

#[test]
fn ball_gathering_kill_resume_is_bit_identical_in_process() {
    for (name, graph) in workloads() {
        for shards in shard_counts() {
            assert_kill_resume_identity(
                &graph,
                3,
                50,
                None,
                &FaultPlan::none(),
                &ChurnPlan::none(),
                shards,
                true,
                InProcessTransport::new,
                |node, _| BallGathering::new(node, 3),
                BallGathering::known_ids,
                &format!("ball-gathering/{name}/{shards}sh"),
            );
        }
    }
}

#[test]
fn kill_resume_is_bit_identical_on_the_mock_backend() {
    // The wire-faithful mock: every pending payload crosses the checkpoint
    // as its encoded bytes *and* every delivered payload crosses the
    // barrier encode/decoded, so this row pins both codec paths at once.
    for (name, graph) in workloads() {
        for shards in shard_counts() {
            assert_kill_resume_identity(
                &graph,
                1,
                300,
                None,
                &FaultPlan::none(),
                &ChurnPlan::none(),
                shards,
                false,
                MockTransport::new,
                |_, knowledge| LubyMis::new(knowledge.degree()),
                LubyMis::state,
                &format!("mock/luby-mis/{name}/{shards}sh"),
            );
        }
    }
}

#[test]
fn kill_resume_is_bit_identical_under_composed_fault_and_churn_plans() {
    // The hardest row: seeded drops + a crash fault composed with a mixed
    // churn stream. The checkpoint does not store the ChaCha streams — both
    // drivers re-derive their positions from the round counter — so this is
    // the test that pins keyed-stream restorability. Fixed round count:
    // heavily disturbed executions may legitimately never quiesce.
    for (name, graph) in workloads() {
        let n = graph.node_count();
        let plan = FaultPlan::new(301)
            .with_drop_probability(0.1)
            .with_crash(NodeId::from_usize(n / 2), 3);
        let churn = ChurnPlan::new(203)
            .with_insert_rate(0.03)
            .with_delete_rate(0.03)
            .with_node_leave(2, NodeId::from_usize(n / 3))
            .with_node_join(5, NodeId::from_usize(n / 3));
        for shards in shard_counts() {
            assert_kill_resume_identity(
                &graph,
                7,
                0,
                Some(12),
                &plan,
                &churn,
                shards,
                true,
                InProcessTransport::new,
                |node, _| BallGathering::new(node, 20),
                BallGathering::known_ids,
                &format!("faults+churn/{name}/{shards}sh"),
            );
        }
    }
}

#[test]
fn checkpoint_files_round_trip_and_reject_torn_or_corrupt_bytes() {
    let (_, graph) = workloads().remove(0);
    let mut network = Network::new(
        &graph,
        NetworkConfig::with_seed(5).traced(10_000),
        |node, _| BallGathering::new(node, 3),
    )
    .unwrap();
    network.run_rounds(2).unwrap();
    let checkpoint = network.checkpoint();

    let dir = std::env::temp_dir().join(format!("freelunch-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round2.flcp");
    checkpoint.write_to_file(&path).unwrap();
    let reloaded = NetworkCheckpoint::read_from_file(&path).unwrap();
    assert_eq!(checkpoint, reloaded, "file round-trip");

    let bytes = std::fs::read(&path).unwrap();
    // A torn write: every strict prefix must be rejected with a precise
    // RuntimeError::Checkpoint, never a panic or a silent partial restore.
    for cut in [0, 7, 23, 24, bytes.len() / 2, bytes.len() - 1] {
        let torn = dir.join(format!("torn-{cut}.flcp"));
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        let err = NetworkCheckpoint::read_from_file(&torn).unwrap_err();
        let reason = match &err {
            RuntimeError::Checkpoint { reason } => reason.clone(),
            other => panic!("torn@{cut}: wrong error kind: {other}"),
        };
        assert!(
            reason.contains("torn") || reason.contains("truncated"),
            "torn@{cut}: reason does not name the tear: {reason}"
        );
        assert!(
            reason.contains("torn-"),
            "torn@{cut}: reason does not name the file: {reason}"
        );
    }
    // Bit rot in the body must fail the checksum (named as corruption).
    for flip in [24, 40, bytes.len() - 1] {
        let mut rotten = bytes.clone();
        rotten[flip] ^= 0x40;
        let err = NetworkCheckpoint::from_bytes(&rotten).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "flip@{flip}: {err}");
    }
    // A corrupted header magic is diagnosed before any checksum work.
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    let err = NetworkCheckpoint::from_bytes(&wrong_magic).unwrap_err();
    assert!(err.to_string().contains("header"), "magic: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restore_rejects_a_checkpoint_from_a_different_topology() {
    let mut w = workloads();
    let graph_b = if w.len() > 1 {
        w.remove(1).1
    } else {
        barabasi_albert(&GeneratorConfig::new(64, 42), 3).unwrap()
    };
    let graph_a = w.remove(0).1;
    let factory = |node: NodeId, _: &InitialKnowledge| BallGathering::new(node, 3);
    let mut network = Network::new(&graph_a, NetworkConfig::with_seed(5), factory).unwrap();
    network.run_rounds(1).unwrap();
    let checkpoint = network.checkpoint();
    let err = Network::restore(&graph_b, &checkpoint, factory).unwrap_err();
    assert!(
        matches!(&err, RuntimeError::Checkpoint { reason } if reason.contains("graph")),
        "topology mismatch not diagnosed: {err}"
    );
}

// ---------------------------------------------------------------------------
// TCP rows: the self-healing plane.
// ---------------------------------------------------------------------------

/// One rank's view of a finished TCP execution.
type RankView<O> = (Vec<O>, ExecutionMetrics, MessageLedger);

fn bind_world(world: usize) -> (Vec<TcpListener>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..world)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers = listeners
        .iter()
        .map(|listener| listener.local_addr().unwrap())
        .collect();
    (listeners, peers)
}

/// The kill/relaunch drill: rank 1 runs `kill_round` rounds, checkpoints,
/// and crashes (network dropped, sockets closed). Rank 0, under
/// [`RecoveryPolicy::Retry`], blocks at the next barrier until rank 1 is
/// relaunched from the serialized checkpoint via
/// [`TcpTransport::resume_from`] and both ranks run to quiescence. Returns
/// both ranks' views plus rank 0's recovered-peer count.
fn tcp_kill_relaunch<P, O>(
    graph: &MultiGraph,
    seed: u64,
    budget: u32,
    shards: usize,
    kill_round: u32,
    factory: impl Fn(NodeId, &InitialKnowledge) -> P + Copy + Send + Sync,
    extract: impl Fn(&P) -> O + Copy + Send + Sync,
) -> (Vec<RankView<O>>, u64)
where
    P: NodeProgram,
    P::Message: WireCodec,
    O: PartialEq + Debug + Send,
{
    let (mut listeners, peers) = bind_world(2);
    let victim_listener = listeners.pop().unwrap();
    let survivor_listener = listeners.pop().unwrap();
    std::thread::scope(|scope| {
        let survivor_peers = peers.clone();
        let survivor = scope.spawn(move || {
            let mut config = TcpConfig::new(0, survivor_peers)
                .with_recovery(RecoveryPolicy::Retry { attempts: 3 });
            // Bound the failure mode: a broken rejoin shows up in seconds,
            // not after 3 × 30 s.
            config.io_timeout = Duration::from_secs(10);
            let transport = TcpTransport::with_listener(survivor_listener, &config).unwrap();
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(seed).sharded(shards),
                FaultPlan::none(),
                transport,
                factory,
            )
            .unwrap();
            network.run_until_halt(budget).unwrap();
            let recovered = network.transport().recovered_peers_total();
            let owned = network.owned_nodes();
            let outputs: Vec<O> = network.programs()[owned].iter().map(extract).collect();
            let view = (outputs, network.metrics().clone(), network.ledger().clone());
            (view, recovered)
        });

        let victim_peers = peers.clone();
        let victim = scope.spawn(move || {
            let config = TcpConfig::new(1, victim_peers);
            let transport = TcpTransport::with_listener(victim_listener, &config).unwrap();
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(seed).sharded(shards),
                FaultPlan::none(),
                transport,
                factory,
            )
            .unwrap();
            network.run_rounds(kill_round).unwrap();
            let checkpoint = network.checkpoint();
            // The crash: network (and with it every socket and the
            // listener) dropped. Only the serialized bytes survive.
            drop(network);
            checkpoint.to_bytes()
        });
        let checkpoint_bytes = victim.join().unwrap();

        let relaunch_peers = peers.clone();
        let relauncher = scope.spawn(move || {
            let checkpoint = NetworkCheckpoint::from_bytes(&checkpoint_bytes).unwrap();
            let config = TcpConfig::new(1, relaunch_peers);
            let transport =
                TcpTransport::resume_from(&config, checkpoint.round, checkpoint.fault_totals())
                    .unwrap();
            let mut network = Network::restore_with_plans(
                graph,
                FaultPlan::none(),
                ChurnPlan::none(),
                transport,
                &checkpoint,
                factory,
            )
            .unwrap();
            network.run_until_halt(budget).unwrap();
            let owned = network.owned_nodes();
            let outputs: Vec<O> = network.programs()[owned].iter().map(extract).collect();
            (outputs, network.metrics().clone(), network.ledger().clone())
        });

        let (survivor_view, recovered) = survivor.join().unwrap();
        let relaunched_view = relauncher.join().unwrap();
        (vec![survivor_view, relaunched_view], recovered)
    })
}

#[test]
fn tcp_rank_kill_and_relaunch_is_bit_identical_to_the_uninterrupted_run() {
    let (_, graph) = workloads().remove(0);
    let factory = |node: NodeId, _: &InitialKnowledge| BallGathering::new(node, 4);
    let extract = BallGathering::known_ids;

    // In-process reference: the global truth every rank must agree with.
    let mut reference = Network::new(&graph, NetworkConfig::with_seed(9), factory).unwrap();
    reference.run_until_halt(20).unwrap();
    let ref_outputs: Vec<Vec<u32>> = reference.programs().iter().map(extract).collect();
    let ref_metrics = reference.metrics().clone();
    let ref_ledger = reference.ledger().clone();

    for shards in shard_counts() {
        let kill_round = 2;
        let (views, recovered) =
            tcp_kill_relaunch(&graph, 9, 20, shards, kill_round, factory, extract);
        assert_eq!(recovered, 1, "{shards}sh: survivor re-admitted one peer");
        let spliced: Vec<Vec<u32>> = views
            .iter()
            .flat_map(|(outputs, _, _)| outputs.iter().cloned())
            .collect();
        assert_eq!(ref_outputs, spliced, "{shards}sh: outputs differ");
        for (rank, (_, metrics, ledger)) in views.iter().enumerate() {
            // The symmetric stats exchange survives the crash: the
            // relaunched rank and the survivor both end with the identical
            // global ledger of the run that was never interrupted.
            assert_eq!(&ref_metrics, metrics, "{shards}sh: rank {rank} metrics");
            assert_eq!(&ref_ledger, ledger, "{shards}sh: rank {rank} ledger");
        }
    }
}

#[test]
fn tcp_rejoin_with_a_stale_checkpoint_is_rejected_on_both_sides() {
    let (_, graph) = workloads().remove(0);
    let factory = |node: NodeId, _: &InitialKnowledge| BallGathering::new(node, 4);
    let (mut listeners, peers) = bind_world(2);
    let victim_listener = listeners.pop().unwrap();
    let survivor_listener = listeners.pop().unwrap();
    let graph = &graph;

    let (survivor_err, relaunch_err) = std::thread::scope(|scope| {
        let survivor_peers = peers.clone();
        let survivor = scope.spawn(move || {
            let mut config = TcpConfig::new(0, survivor_peers)
                .with_recovery(RecoveryPolicy::Retry { attempts: 2 });
            config.io_timeout = Duration::from_secs(5);
            let transport = TcpTransport::with_listener(survivor_listener, &config).unwrap();
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(9),
                FaultPlan::none(),
                transport,
                factory,
            )
            .unwrap();
            network.run_until_halt(20).unwrap_err()
        });

        let victim_peers = peers.clone();
        let victim = scope.spawn(move || {
            let config = TcpConfig::new(1, victim_peers);
            let transport = TcpTransport::with_listener(victim_listener, &config).unwrap();
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(9),
                FaultPlan::none(),
                transport,
                factory,
            )
            .unwrap();
            // Checkpoint at round 1, then keep running through round 2
            // before crashing — the checkpoint is now one round stale.
            network.run_rounds(1).unwrap();
            let checkpoint = network.checkpoint();
            network.run_rounds(1).unwrap();
            drop(network);
            checkpoint.to_bytes()
        });
        let stale_bytes = victim.join().unwrap();

        let relaunch_peers = peers.clone();
        let relauncher = scope.spawn(move || {
            let checkpoint = NetworkCheckpoint::from_bytes(&stale_bytes).unwrap();
            assert_eq!(checkpoint.round, 1);
            let config = TcpConfig::new(1, relaunch_peers);
            TcpTransport::<Vec<u32>>::resume_from(
                &config,
                checkpoint.round,
                checkpoint.fault_totals(),
            )
            .map(|_| ())
            .unwrap_err()
        });

        (survivor.join().unwrap(), relauncher.join().unwrap())
    });

    // The survivor names both rounds and the remediation…
    let survivor_msg = survivor_err.to_string();
    assert!(
        survivor_msg.contains("desynchronized") && survivor_msg.contains("resumes at round 1"),
        "survivor: {survivor_msg}"
    );
    assert!(
        survivor_msg.contains("this barrier is at round 3"),
        "survivor: {survivor_msg}"
    );
    // …and the rejoiner learns it was rejected, with the same numbers.
    let relaunch_msg = relaunch_err.to_string();
    assert!(
        relaunch_msg.contains("rejected the rejoin as desynchronized")
            && relaunch_msg.contains("barrier is at round 3"),
        "rejoiner: {relaunch_msg}"
    );
}

#[test]
fn tcp_peer_eof_surfaces_peer_dead_promptly_under_fail_fast() {
    let (_, graph) = workloads().remove(0);
    let factory = |node: NodeId, _: &InitialKnowledge| BallGathering::new(node, 4);
    let (mut listeners, peers) = bind_world(2);
    let victim_listener = listeners.pop().unwrap();
    let survivor_listener = listeners.pop().unwrap();
    let graph = &graph;

    let (err, elapsed) = std::thread::scope(|scope| {
        let survivor_peers = peers.clone();
        let survivor = scope.spawn(move || {
            // Deliberately generous io_timeout: an EOF (crashed peer) must
            // surface immediately, not after a liveness deadline.
            let config = TcpConfig::new(0, survivor_peers);
            let transport = TcpTransport::with_listener(survivor_listener, &config).unwrap();
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(9),
                FaultPlan::none(),
                transport,
                factory,
            )
            .unwrap();
            network.run_rounds(1).unwrap();
            let started = Instant::now();
            let err = network.run_until_halt(20).unwrap_err();
            (err, started.elapsed())
        });

        let victim_peers = peers.clone();
        let victim = scope.spawn(move || {
            let config = TcpConfig::new(1, victim_peers);
            let transport = TcpTransport::with_listener(victim_listener, &config).unwrap();
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(9),
                FaultPlan::none(),
                transport,
                factory,
            )
            .unwrap();
            network.run_rounds(1).unwrap();
            // Crash between barriers; the survivor reads EOF at round 2.
        });
        victim.join().unwrap();
        survivor.join().unwrap()
    });

    let msg = err.to_string();
    assert!(
        msg.contains("PeerDead") && msg.contains("rank 1"),
        "unexpected error: {msg}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "EOF took {elapsed:?} to surface — hung toward the 30 s io_timeout"
    );
}

#[test]
fn tcp_silent_peer_is_declared_dead_within_the_liveness_deadline() {
    let (_, graph) = workloads().remove(0);
    let factory = |node: NodeId, _: &InitialKnowledge| BallGathering::new(node, 4);
    let (mut listeners, peers) = bind_world(2);
    let silent_listener = listeners.pop().unwrap();
    let survivor_listener = listeners.pop().unwrap();
    let graph = &graph;
    let io_timeout = Duration::from_millis(300);
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();

    let (err, elapsed) = std::thread::scope(|scope| {
        let survivor_peers = peers.clone();
        let survivor = scope.spawn(move || {
            let mut config = TcpConfig::new(0, survivor_peers);
            config.io_timeout = io_timeout;
            let transport = TcpTransport::with_listener(survivor_listener, &config).unwrap();
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(9),
                FaultPlan::none(),
                transport,
                factory,
            )
            .unwrap();
            let started = Instant::now();
            let err = network.run_round().unwrap_err();
            let elapsed = started.elapsed();
            done_tx.send(()).unwrap();
            (err, elapsed)
        });

        let silent_peers = peers.clone();
        let silent = scope.spawn(move || {
            let config = TcpConfig::new(1, silent_peers);
            // A live, connected, handshaken peer that never sends a frame:
            // the pathological "slow" peer the liveness deadline exists for.
            let transport: TcpTransport<Vec<u32>> =
                TcpTransport::with_listener(silent_listener, &config).unwrap();
            done_rx.recv().unwrap();
            drop(transport);
        });
        let result = survivor.join().unwrap();
        silent.join().unwrap();
        result
    });

    let msg = err.to_string();
    assert!(
        msg.contains("PeerDead") && msg.contains("poll"),
        "unexpected error: {msg}"
    );
    assert!(
        elapsed >= io_timeout,
        "declared dead after {elapsed:?}, before the {io_timeout:?} liveness deadline"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "took {elapsed:?} — hung far past the {io_timeout:?} liveness deadline"
    );
}
