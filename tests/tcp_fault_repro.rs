//! Scratch repro: fault totals over a 2-rank TCP run vs in-process.

use freelunch::graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch::graph::NodeId;
use freelunch::runtime::transport::{TcpConfig, TcpTransport};
use freelunch::runtime::{
    Context, Envelope, FaultPlan, InitialKnowledge, Network, NetworkConfig, NodeProgram,
};
use std::net::{SocketAddr, TcpListener};

#[derive(Debug)]
struct Pinger {
    rounds: u32,
}

impl NodeProgram for Pinger {
    type Message = u32;

    fn init(&mut self, ctx: &mut Context<'_, u32>) {
        for port in 0..ctx.degree() {
            ctx.send(port, 0);
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, u32>, _inbox: &[Envelope<u32>]) {
        self.rounds += 1;
        if self.rounds >= 10 {
            ctx.halt();
            return;
        }
        for port in 0..ctx.degree() {
            ctx.send(port, self.rounds);
        }
    }
}

fn factory(_: NodeId, _: &InitialKnowledge) -> Pinger {
    Pinger { rounds: 0 }
}

#[test]
fn tcp_fault_totals_match_in_process() {
    let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(16, 42), 0.3).unwrap();
    let plan = || FaultPlan::new(7).with_drop_probability(0.2);

    let mut reference = Network::with_fault_plan(
        &graph,
        NetworkConfig::with_seed(1),
        plan(),
        factory,
    )
    .unwrap();
    reference.run_until_halt(100).unwrap();
    let ref_totals = reference.ledger().fault_totals();

    const WORLD: usize = 2;
    let listeners: Vec<TcpListener> = (0..WORLD)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap())
        .collect();
    let totals: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let config = TcpConfig::new(rank, peers.clone());
                scope.spawn(move || {
                    let transport = TcpTransport::with_listener(listener, &config).unwrap();
                    let mut network = Network::with_transport(
                        &graph,
                        NetworkConfig::with_seed(1),
                        plan(),
                        transport,
                        factory,
                    )
                    .unwrap();
                    network.run_until_halt(100).unwrap();
                    network.ledger().fault_totals()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    println!("in-process totals: {ref_totals:?}");
    println!("tcp rank0 totals:  {:?}", totals[0]);
    println!("tcp rank1 totals:  {:?}", totals[1]);
    assert_eq!(ref_totals, totals[0], "rank 0 diverged");
    assert_eq!(ref_totals, totals[1], "rank 1 diverged");
}
