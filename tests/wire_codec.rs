//! Wire-codec law sweeps over every shipped message type.
//!
//! `docs/TRANSPORT.md` §3 states three laws every [`WireCodec`] must obey:
//!
//! 1. roundtrip — `decode(encode(m)) == m`;
//! 2. sizing — the encoded length equals the shipping program's
//!    `payload_bytes(m)`, byte for byte (this is what keeps the
//!    [`MessageLedger`](freelunch::runtime::MessageLedger) identical across
//!    backends);
//! 3. rejection — `decode` errors on every buffer `encode` cannot produce
//!    (truncated, oversized, unknown tag, non-zero padding).
//!
//! The sweeps below are deterministic (exhaustive tags × structured value
//! grids), so a law violation is always reproducible.

use freelunch::algorithms::broadcast::BallGathering;
use freelunch::algorithms::coloring::{ColoringMessage, RandomizedColoring};
use freelunch::algorithms::leader::LocalLeaderElection;
use freelunch::algorithms::matching::{MatchingMessage, MaximalMatching};
use freelunch::algorithms::mis::{LubyMis, MisMessage};
use freelunch::core::sampler::distributed::{Level0Message, Level0Program};
use freelunch::graph::{EdgeId, NodeId};
use freelunch::runtime::transport::{CodecError, WireCodec};
use freelunch::runtime::{CheckpointHeader, ChurnEvent, NodeProgram, RejoinHello};
use std::fmt::Debug;

/// The structured value grid the payload-carrying variants are swept over.
const VALUE_GRID: [u64; 12] = [
    0,
    1,
    2,
    7,
    0xFF,
    0x100,
    0xFFFF,
    0x1_0000,
    0xDEAD_BEEF,
    u32::MAX as u64,
    u64::MAX / 3,
    u64::MAX,
];

/// Checks laws 1–3 for one message of one program type.
fn check_message<P>(message: P::Message)
where
    P: NodeProgram,
    P::Message: WireCodec + PartialEq,
{
    let encoded = message.encode_to_vec();

    // Law 2: sizing — encoded length equals the ledger's payload_bytes.
    assert_eq!(
        encoded.len() as u64,
        P::payload_bytes(&message),
        "codec/payload_bytes mismatch for {message:?}"
    );

    // Law 1: roundtrip.
    match P::Message::decode(&encoded) {
        Ok(decoded) => assert!(decoded == message, "roundtrip mangled {message:?}"),
        Err(err) => panic!("decode(encode({message:?})) failed: {err}"),
    }

    // Law 3a: no strict prefix may decode back to the original message.
    // Fixed-size codecs reject every prefix outright; a variable-length
    // codec (token bundles, delimited by the frame length) may accept a
    // prefix, but only ever as a *different* message — truncation is never
    // silent.
    for cut in 0..encoded.len() {
        if let Ok(decoded) = P::Message::decode(&encoded[..cut]) {
            assert!(
                decoded != message,
                "{message:?} survived truncation to {cut} of {} bytes",
                encoded.len()
            );
        }
    }

    // Law 3b: trailing garbage is rejected (both a zero byte, which also
    // guards against padding confusion, and a non-zero one).
    for extra in [0x00, 0xA5] {
        let mut oversized = encoded.clone();
        oversized.push(extra);
        assert!(
            P::Message::decode(&oversized).is_err(),
            "{message:?} decoded with a trailing {extra:#04x} byte"
        );
    }
}

#[test]
fn coloring_messages_obey_the_codec_laws() {
    for value in VALUE_GRID {
        let color = value as u32;
        check_message::<RandomizedColoring>(ColoringMessage::Proposal(color));
        check_message::<RandomizedColoring>(ColoringMessage::Final(color));
    }
}

#[test]
fn matching_messages_obey_the_codec_laws() {
    for message in [
        MatchingMessage::Propose,
        MatchingMessage::Accept,
        MatchingMessage::Retired,
    ] {
        check_message::<MaximalMatching>(message);
    }
}

#[test]
fn mis_messages_obey_the_codec_laws() {
    for value in VALUE_GRID {
        check_message::<LubyMis>(MisMessage::Priority(value));
    }
    check_message::<LubyMis>(MisMessage::Joined);
    check_message::<LubyMis>(MisMessage::Retired);
}

#[test]
fn level0_messages_obey_the_codec_laws() {
    for message in [
        Level0Message::Query,
        Level0Message::Reply { is_center: false },
        Level0Message::Reply { is_center: true },
        Level0Message::Join,
        Level0Message::Ack,
    ] {
        check_message::<Level0Program>(message);
    }
}

#[test]
fn leader_ids_obey_the_codec_laws() {
    for value in VALUE_GRID {
        check_message::<LocalLeaderElection>(value as u32);
    }
}

#[test]
fn token_bundles_obey_the_codec_laws() {
    // Bundles of every length in 0..=17 plus a large one, filled from the
    // value grid.
    for len in (0..=17).chain([512]) {
        let bundle: Vec<u32> = (0..len)
            .map(|i| VALUE_GRID[i % VALUE_GRID.len()] as u32 ^ i as u32)
            .collect();
        check_message::<BallGathering>(bundle);
    }
}

#[test]
fn unknown_tags_are_rejected_not_misread() {
    // Flip the tag byte of a valid encoding to every invalid value the
    // type's tag space excludes; decode must answer InvalidTag, never a
    // wrong message.
    let coloring = ColoringMessage::Proposal(3).encode_to_vec();
    for tag in 2..=255u8 {
        let mut bad = coloring.clone();
        bad[0] = tag;
        assert_eq!(
            ColoringMessage::decode(&bad),
            Err(CodecError::InvalidTag { tag })
        );
    }
    let mis = MisMessage::Joined.encode_to_vec();
    for tag in 3..=255u8 {
        let mut bad = mis.clone();
        bad[0] = tag;
        assert_eq!(
            MisMessage::decode(&bad),
            Err(CodecError::InvalidTag { tag })
        );
    }
    let level0 = Level0Message::Ack.encode_to_vec();
    for tag in 5..=255u8 {
        let mut bad = level0.clone();
        bad[0] = tag;
        assert_eq!(
            Level0Message::decode(&bad),
            Err(CodecError::InvalidTag { tag })
        );
    }
    let matching = MatchingMessage::Propose.encode_to_vec();
    for tag in 3..=255u8 {
        let mut bad = matching.clone();
        bad[0] = tag;
        assert_eq!(
            MatchingMessage::decode(&bad),
            Err(CodecError::InvalidTag { tag })
        );
    }
}

#[test]
fn nonzero_padding_is_rejected() {
    // Corrupting any padding byte of a padded encoding must be caught:
    // otherwise a corrupted frame could silently alias a valid message.
    fn corrupt_padding<M: WireCodec + Debug>(message: M, used: usize) {
        let encoded = message.encode_to_vec();
        for position in used..encoded.len() {
            let mut bad = encoded.clone();
            bad[position] = 0x7F;
            assert_eq!(
                M::decode(&bad).map(drop),
                Err(CodecError::InvalidPadding),
                "padding corruption at byte {position} of {message:?} went unnoticed"
            );
        }
    }
    corrupt_padding(ColoringMessage::Final(9), 5);
    corrupt_padding(MisMessage::Retired, 1);
    corrupt_padding(MisMessage::Priority(4), 9);
    corrupt_padding(Level0Message::Join, 1);
    corrupt_padding(MatchingMessage::Accept, 1);
}

/// The value grid the churn-event frame section is swept over: every event
/// kind × edge/node IDs spanning the full value range.
fn churn_event_grid() -> Vec<ChurnEvent> {
    let mut events = Vec::new();
    for value in VALUE_GRID {
        let edge = EdgeId::new(value);
        let node = NodeId::new(value as u32);
        events.push(ChurnEvent::EdgeInsert {
            edge,
            u: node,
            v: NodeId::new((value as u32).wrapping_add(1)),
        });
        events.push(ChurnEvent::EdgeDelete { edge });
        events.push(ChurnEvent::NodeJoin { node });
        events.push(ChurnEvent::NodeLeave { node });
    }
    events
}

/// Laws 1–3 for the churn-event frame section (`docs/CHURN.md`): churn
/// events are not a program's payload — they ride their own fixed-size slot
/// of every wire frame — so they are swept directly rather than through
/// [`check_message`]. The sizing law here is the frame layout itself:
/// every event occupies exactly [`ChurnEvent::WIRE_BYTES`].
#[test]
fn churn_events_obey_the_codec_laws() {
    for event in churn_event_grid() {
        let encoded = event.encode_to_vec();

        // Law 2: fixed frame-slot sizing.
        assert_eq!(
            encoded.len(),
            ChurnEvent::WIRE_BYTES,
            "frame slot drifted for {event:?}"
        );

        // Law 1: roundtrip.
        assert_eq!(ChurnEvent::decode(&encoded), Ok(event));

        // Law 3: every strict prefix is rejected (the codec is fixed-size,
        // so truncation can never silently decode) …
        for cut in 0..encoded.len() {
            assert!(
                ChurnEvent::decode(&encoded[..cut]).is_err(),
                "{event:?} survived truncation to {cut} bytes"
            );
        }
        // … and so is trailing garbage, zero or not.
        for extra in [0x00, 0xA5] {
            let mut oversized = encoded.clone();
            oversized.push(extra);
            assert!(
                ChurnEvent::decode(&oversized).is_err(),
                "{event:?} decoded with a trailing {extra:#04x} byte"
            );
        }
    }
}

#[test]
fn churn_event_bad_tags_are_rejected_not_misread() {
    // Tags 1–4 are the only live ones; flipping the tag byte to anything
    // else must answer InvalidTag, never a wrong event.
    let valid = ChurnEvent::EdgeDelete {
        edge: EdgeId::new(7),
    }
    .encode_to_vec();
    for tag in [0u8].into_iter().chain(5..=255) {
        let mut bad = valid.clone();
        bad[0] = tag;
        assert_eq!(
            ChurnEvent::decode(&bad),
            Err(CodecError::InvalidTag { tag })
        );
    }
}

#[test]
fn churn_event_padding_corruption_is_rejected() {
    // Bytes 1–3 are structural zero padding in every event; each node
    // event additionally zeroes the edge slot and the second node slot, and
    // an edge delete zeroes both node slots. Corrupting any such byte must
    // be caught — a corrupted frame slot may never alias a valid event.
    let events: Vec<(ChurnEvent, Vec<usize>)> = vec![
        (
            ChurnEvent::EdgeInsert {
                edge: EdgeId::new(3),
                u: NodeId::new(1),
                v: NodeId::new(2),
            },
            (1..4).collect(),
        ),
        (
            ChurnEvent::EdgeDelete {
                edge: EdgeId::new(3),
            },
            (1..4).chain(12..20).collect(),
        ),
        (
            ChurnEvent::NodeJoin {
                node: NodeId::new(9),
            },
            (1..4).chain(4..12).chain(16..20).collect(),
        ),
        (
            ChurnEvent::NodeLeave {
                node: NodeId::new(9),
            },
            (1..4).chain(4..12).chain(16..20).collect(),
        ),
    ];
    for (event, zero_positions) in events {
        let encoded = event.encode_to_vec();
        for position in zero_positions {
            assert_eq!(encoded[position], 0, "{event:?}: byte {position} not pad");
            let mut bad = encoded.clone();
            bad[position] = 0x7F;
            assert_eq!(
                ChurnEvent::decode(&bad),
                Err(CodecError::InvalidPadding),
                "padding corruption at byte {position} of {event:?} went unnoticed"
            );
        }
    }
}

/// Laws 1–3 for the checkpoint-file header (`docs/RECOVERY.md`): like churn
/// events, the header is not a program payload — it is the 24-byte front of
/// every checkpoint file — so it is swept directly. Its rejection law is
/// what makes torn and corrupt checkpoint files detectable before any
/// section parsing.
#[test]
fn checkpoint_headers_obey_the_codec_laws() {
    for body_len in VALUE_GRID {
        for checksum in [0u64, 0xDEAD_BEEF_CAFE_F00D, u64::MAX] {
            let header = CheckpointHeader { body_len, checksum };
            let encoded = header.encode_to_vec();

            // Law 2: fixed sizing.
            assert_eq!(encoded.len(), CheckpointHeader::WIRE_BYTES);

            // Law 1: roundtrip.
            assert_eq!(CheckpointHeader::decode(&encoded), Ok(header));

            // Law 3: every strict prefix is a torn write…
            for cut in 0..encoded.len() {
                assert_eq!(
                    CheckpointHeader::decode(&encoded[..cut]),
                    Err(CodecError::Truncated {
                        needed: CheckpointHeader::WIRE_BYTES,
                        got: cut
                    }),
                    "{header:?} survived truncation to {cut} bytes"
                );
            }
            // …and trailing garbage is rejected, zero or not.
            for extra in [0x00, 0xA5] {
                let mut oversized = encoded.clone();
                oversized.push(extra);
                assert_eq!(
                    CheckpointHeader::decode(&oversized),
                    Err(CodecError::Oversized {
                        expected: CheckpointHeader::WIRE_BYTES,
                        got: CheckpointHeader::WIRE_BYTES + 1
                    })
                );
            }
        }
    }
}

#[test]
fn checkpoint_header_magic_version_and_padding_corruption_is_rejected() {
    let encoded = CheckpointHeader {
        body_len: 64,
        checksum: 7,
    }
    .encode_to_vec();
    // A corrupted magic answers InvalidTag with the first differing byte —
    // "not a checkpoint file" beats a checksum wild-goose chase.
    for position in 0..4 {
        let mut bad = encoded.clone();
        bad[position] = 0x7F;
        assert_eq!(
            CheckpointHeader::decode(&bad),
            Err(CodecError::InvalidTag { tag: 0x7F }),
            "magic corruption at byte {position} went unnoticed"
        );
    }
    // Every unknown version byte is rejected (version 2 is the only live
    // one), so a future layout bump can never be misparsed by this build.
    for version in (0u8..=255).filter(|&v| v != 2) {
        let mut bad = encoded.clone();
        bad[4] = version;
        assert_eq!(
            CheckpointHeader::decode(&bad),
            Err(CodecError::InvalidTag { tag: version })
        );
    }
    // Structural padding must be zero.
    for position in 5..8 {
        let mut bad = encoded.clone();
        bad[position] = 0x7F;
        assert_eq!(
            CheckpointHeader::decode(&bad),
            Err(CodecError::InvalidPadding),
            "padding corruption at byte {position} went unnoticed"
        );
    }
}

/// Laws 1–3 for the rejoin-handshake frame (`docs/RECOVERY.md`): the
/// 24-byte [`RejoinHello`] a relaunched rank opens with when it dials a
/// survivor. A corrupted or truncated hello must be rejected before the
/// survivor decides whether to re-admit the rank.
#[test]
fn rejoin_hellos_obey_the_codec_laws() {
    for value in VALUE_GRID {
        let hello = RejoinHello {
            world: value as u32,
            rank: (value as u32).wrapping_add(1),
            resume_round: (value as u32).wrapping_mul(3),
        };
        let encoded = hello.encode_to_vec();

        // Law 2: fixed sizing.
        assert_eq!(encoded.len(), RejoinHello::WIRE_BYTES);

        // Law 1: roundtrip.
        assert_eq!(RejoinHello::decode(&encoded), Ok(hello));

        // Law 3: truncation and trailing garbage are rejected.
        for cut in 0..encoded.len() {
            assert_eq!(
                RejoinHello::decode(&encoded[..cut]),
                Err(CodecError::Truncated {
                    needed: RejoinHello::WIRE_BYTES,
                    got: cut
                }),
                "{hello:?} survived truncation to {cut} bytes"
            );
        }
        for extra in [0x00, 0xA5] {
            let mut oversized = encoded.clone();
            oversized.push(extra);
            assert_eq!(
                RejoinHello::decode(&oversized),
                Err(CodecError::Oversized {
                    expected: RejoinHello::WIRE_BYTES,
                    got: RejoinHello::WIRE_BYTES + 1
                })
            );
        }
    }
}

#[test]
fn rejoin_hello_magic_version_and_padding_corruption_is_rejected() {
    let encoded = RejoinHello {
        world: 2,
        rank: 1,
        resume_round: 5,
    }
    .encode_to_vec();
    for position in 0..4 {
        let mut bad = encoded.clone();
        bad[position] = 0x7F;
        assert_eq!(
            RejoinHello::decode(&bad),
            Err(CodecError::InvalidTag { tag: 0x7F }),
            "magic corruption at byte {position} went unnoticed"
        );
    }
    for version in (0u8..=255).filter(|&v| v != 1) {
        let mut bad = encoded.clone();
        bad[4] = version;
        assert_eq!(
            RejoinHello::decode(&bad),
            Err(CodecError::InvalidTag { tag: version })
        );
    }
    // Both padding runs — after the version byte and at the tail.
    for position in (5..8).chain(20..24) {
        let mut bad = encoded.clone();
        bad[position] = 0x7F;
        assert_eq!(
            RejoinHello::decode(&bad),
            Err(CodecError::InvalidPadding),
            "padding corruption at byte {position} went unnoticed"
        );
    }
}

/// The runtime's built-in codecs (unit and integers) are swept here too so
/// an engine-internal message type can ride a wire transport unchanged.
#[test]
fn builtin_codecs_obey_the_codec_laws() {
    assert_eq!(().encode_to_vec().len(), 0);
    assert_eq!(<()>::decode(&[]), Ok(()));
    assert!(<()>::decode(&[0]).is_err());
    for value in VALUE_GRID {
        let encoded = value.encode_to_vec();
        assert_eq!(encoded.len(), 8);
        assert_eq!(u64::decode(&encoded), Ok(value));
        assert!(u64::decode(&encoded[..7]).is_err());
        let narrow = (value as u32).encode_to_vec();
        assert_eq!(narrow.len(), 4);
        assert_eq!(u32::decode(&narrow), Ok(value as u32));
    }
}
