//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Exposes the macro and type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `BenchmarkId`, `Bencher::iter`, [`black_box`]) and really
//! measures: each benchmark is warmed up, then timed for `sample_size`
//! samples, and min/mean/max per-iteration times are printed.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimiser from deleting benchmark
/// bodies. (A `read_volatile`-free best-effort version: the value is routed
/// through `std::hint::black_box`.)
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark inside a group, e.g. `k2/256`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an ID from a function name and a parameter display value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an ID from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly: a short warm-up, then `sample_size`
    /// timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!("{label:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` with no external input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmarks `routine` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (printing-only in this stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        let mut count = 0u64;
        bencher.iter(|| {
            count += 1;
            count
        });
        assert_eq!(bencher.samples.len(), 5);
        assert_eq!(count, 7); // 2 warm-up + 5 timed
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("k2", 256).to_string(), "k2/256");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
