//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build container for this workspace has no network access, so this
//! crate re-implements exactly the subset of the `rand 0.8` API the
//! workspace uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`]
//! (`shuffle`, `choose_multiple`). Generators are deterministic and of
//! non-cryptographic quality, which is all the simulations need.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way crates.io `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dest, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dest = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type produced by the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift; the bias of at most span/2^64 is far below
                // anything the simulations can observe.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let offset = (0..span).sample_from(rng);
        self.start.wrapping_add(offset as i64)
    }
}

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        let wide = (i64::from(self.start)..i64::from(self.end)).sample_from(rng);
        wide as i32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256**-quality is overkill
    /// here; a 4-word xoshiro-style generator keeps it simple and fast.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // Avoid the all-zero state, which is a fixed point of xoshiro.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices: the subset of `rand::seq::SliceRandom`
    /// the workspace uses.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Draws `amount` distinct elements (fewer if the slice is shorter),
        /// in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount);
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs, (0..8).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<u32> = (0..10).collect();
        let picked: Vec<&u32> = items.choose_multiple(&mut rng, 4).collect();
        assert_eq!(picked.len(), 4);
        let mut sorted: Vec<u32> = picked.iter().map(|&&v| v).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
