//! Offline stand-in for the crates.io `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream (Bernstein's ChaCha with 8
//! double-rounds) behind the `rand` stand-in's `RngCore`/`SeedableRng`
//! traits. Word-stream output is not bit-compatible with crates.io
//! `rand_chacha` (which permutes the block differently), but it is a real
//! ChaCha8 stream: deterministic per seed and statistically strong, which
//! is what the simulations rely on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8 random number generator, seedable from 32 bytes or a `u64`.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "block exhausted".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Number of 32-bit words consumed from the keystream so far.
    ///
    /// Together with the seed this fully determines the generator state, so
    /// a checkpointed position can be restored with [`Self::set_word_pos`].
    pub fn word_pos(&self) -> u64 {
        if self.cursor >= 16 {
            self.counter.wrapping_mul(16)
        } else {
            // `refill` already advanced `counter` past the block the cursor
            // is reading from.
            self.counter.wrapping_sub(1).wrapping_mul(16) + self.cursor as u64
        }
    }

    /// Fast-forwards (or rewinds) a freshly seeded generator to an absolute
    /// keystream position previously read with [`Self::word_pos`].
    pub fn set_word_pos(&mut self, pos: u64) {
        self.counter = pos / 16;
        let rem = (pos % 16) as usize;
        if rem == 0 {
            // Exactly at a block boundary: next read refills from `counter`.
            self.cursor = 16;
        } else {
            // Mid-block: regenerate the block (refill bumps `counter` to the
            // value `word_pos` expects) and skip the consumed words.
            self.refill();
            self.cursor = rem;
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, start) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(start);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(chunk);
            *word = u32::from_le_bytes(bytes);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.gen()).collect();
        assert_eq!(xs, (0..64).map(|_| b.gen::<u64>()).collect::<Vec<_>>());
        assert_ne!(xs, (0..64).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn word_pos_roundtrips_at_every_offset() {
        // Restoring `(seed, word_pos)` must land on the identical stream
        // tail, at block boundaries and mid-block alike.
        for consumed in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let mut original = ChaCha8Rng::seed_from_u64(77);
            for _ in 0..consumed {
                original.next_u32();
            }
            assert_eq!(original.word_pos(), consumed as u64);
            let mut restored = ChaCha8Rng::seed_from_u64(77);
            restored.set_word_pos(consumed as u64);
            assert_eq!(restored.word_pos(), consumed as u64);
            let tail: Vec<u32> = (0..40).map(|_| original.next_u32()).collect();
            let replay: Vec<u32> = (0..40).map(|_| restored.next_u32()).collect();
            assert_eq!(tail, replay, "stream diverged after {consumed} words");
        }
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 32,000 bits total; a fair stream stays close to 16,000.
        assert!((15_000..17_000).contains(&ones), "got {ones}");
    }
}
