//! Offline stand-in for the crates.io `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` widely so that result
//! types stay export-ready, but the only code path that actually produces
//! JSON builds a `serde_json::Value` by hand (`freelunch-bench`'s
//! `ExperimentTable::to_json`). This stand-in therefore keeps derives
//! compiling at zero cost: [`Serialize`] and [`Deserialize`] are marker
//! traits blanket-implemented for every type, and the derive macros
//! re-exported from `serde_derive` expand to nothing (while still
//! accepting `#[serde(...)]` helper attributes).

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
