//! No-op `Serialize`/`Deserialize` derive macros for the offline `serde`
//! stand-in. The real traits are blanket-implemented in the `serde`
//! stand-in crate, so the derives only need to exist (and register the
//! `#[serde(...)]` helper attribute); they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
