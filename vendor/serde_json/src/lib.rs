//! Offline stand-in for the crates.io `serde_json` crate.
//!
//! Provides a fully working [`Value`]/[`Number`] tree, JSON escaping, and
//! compact/pretty printers — everything `freelunch-bench` needs to emit
//! real JSON result files. Generic serialisation of arbitrary types is out
//! of scope (the `serde` stand-in's traits are markers); callers build a
//! [`Value`] explicitly and print it.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON number: one of `u64`, `i64` or finite `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Finite double.
    F64(f64),
}

impl Number {
    /// The numeric value as an `f64`, if it fits losslessly enough for
    /// display purposes (always `Some` for this stand-in).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(v) => Some(v as f64),
            Number::I64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    /// Whether the number was created from a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F64(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if !v.is_finite() => write!(f, "null"),
            Number::F64(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::U64(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::U64(u64::from(v)))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::U64(v as u64))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::I64(v))
    }
}

impl From<f64> for Value {
    /// Non-finite values become `null`, mirroring crates.io `serde_json`
    /// (whose `Number` cannot represent them); everything the writer emits
    /// stays valid JSON.
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Number(Number::F64(v))
        } else {
            Value::Null
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut buf = String::new();
                escape_into(&mut buf, s);
                write!(f, "{buf}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(entries) => {
                write!(f, "{{")?;
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::new();
                    escape_into(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Error type for serialisation; this stand-in never fails.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// Unlike crates.io `serde_json`, this stand-in serialises `Value` trees
/// only — callers construct the tree explicitly.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write_pretty(&mut out, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structure() {
        let value = Value::Object(vec![
            ("title".to_string(), Value::from("E1 \"size\"")),
            (
                "rows".to_string(),
                Value::Array(vec![Value::from(1u64), Value::from(2.5)]),
            ),
            ("empty".to_string(), Value::Array(Vec::new())),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\"title\": \"E1 \\\"size\\\"\""));
        assert!(pretty.contains("\"empty\": []"));
        assert!(pretty.lines().count() > 4);
    }

    #[test]
    fn display_is_compact_json() {
        let value = Value::Array(vec![Value::Null, Value::Bool(true), Value::from(3u64)]);
        assert_eq!(value.to_string(), "[null,true,3]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::from(f64::NAN), Value::Null);
        assert_eq!(Value::from(f64::INFINITY).to_string(), "null");
        let doc = Value::Array(vec![Value::from(f64::NEG_INFINITY)]);
        assert!(to_string_pretty(&doc).unwrap().contains("null"));
    }

    #[test]
    fn float_numbers_keep_a_decimal_point() {
        assert_eq!(Value::from(812.5).to_string(), "812.5");
        assert_eq!(Value::from(812.0).to_string(), "812.0");
        assert_eq!(Value::from(812u64).to_string(), "812");
    }
}
